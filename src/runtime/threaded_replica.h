// Wall-clock replica: one worker thread, FIFO queue, real sleeps.
//
// The threaded runtime demonstrates that the selection algorithm and
// repository are not simulation-bound: the same core library drives real
// threads, with delta measured from the actual wall clock exactly as the
// paper's implementation measures it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/ids.h"
#include "common/rng.h"
#include "obs/span.h"
#include "proto/messages.h"
#include "runtime/blocking_queue.h"
#include "stats/variates.h"

namespace aqua::obs {
class Counter;
class Histogram;
class Telemetry;
}  // namespace aqua::obs

namespace aqua::runtime {

class ThreadedReplica {
 public:
  using ReplyFn = std::function<void(const proto::Reply&)>;

  /// Starts the worker thread. Service durations are drawn from
  /// `service_time` and slept for real. `telemetry` (non-owning, may be
  /// null, must outlive the replica) mirrors the request flow into the
  /// shared threaded_replica.* metrics, updated concurrently from the
  /// submitting thread and the worker.
  ThreadedReplica(ReplicaId id, stats::SamplerPtr service_time, Rng rng,
                  obs::Telemetry* telemetry = nullptr);
  ~ThreadedReplica();

  ThreadedReplica(const ThreadedReplica&) = delete;
  ThreadedReplica& operator=(const ThreadedReplica&) = delete;

  [[nodiscard]] ReplicaId id() const { return id_; }

  /// Enqueue a request; `on_reply` runs on the worker thread when the
  /// request completes. Returns false if the replica has crashed. The
  /// optional span context attributes the queue-wait and service spans
  /// to the caller's trace (obs/span.h).
  bool submit(const proto::Request& request, ReplyFn on_reply,
              obs::SpanContext span = {});

  /// Requests waiting in the queue right now.
  [[nodiscard]] std::size_t queue_length() const;

  /// Withdraw a queued request (cancel-on-first-reply). Returns true if
  /// the request was still waiting and got purged; false when it already
  /// started service (it will reply normally), already finished, or was
  /// never submitted here.
  bool cancel(RequestId request, ClientId client);

  /// Requests removed from the queue by cancel() before servicing.
  [[nodiscard]] std::uint64_t purged() const { return purged_.load(); }

  /// Crash: drop the queue, stop servicing, never reply again.
  void crash();
  [[nodiscard]] bool alive() const { return alive_.load(); }

  [[nodiscard]] std::uint64_t serviced() const { return serviced_.load(); }

 private:
  struct Job {
    proto::Request request;
    ReplyFn on_reply;
    std::chrono::steady_clock::time_point enqueued_at;
    obs::SpanContext span{};
  };

  void worker();

  ReplicaId id_;
  stats::SamplerPtr service_time_;
  Rng rng_;
  BlockingQueue<Job> queue_;
  std::atomic<bool> alive_{true};
  std::atomic<std::uint64_t> serviced_{0};
  std::atomic<std::uint64_t> purged_{0};

  /// Null unless telemetry is attached (one-branch discipline).
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* replies_counter_ = nullptr;
  obs::Histogram* service_time_histogram_ = nullptr;
  obs::Histogram* queuing_delay_histogram_ = nullptr;
  /// Non-null only when telemetry is attached and spans are enabled.
  obs::Telemetry* span_sink_ = nullptr;

  std::thread thread_;
};

}  // namespace aqua::runtime
