#include "runtime/threaded_system.h"

#include <cstdint>
#include <thread>

#include "common/assert.h"
#include "obs/scrape.h"

namespace aqua::runtime {

ThreadedSystem::ThreadedSystem(ThreadedSystemConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.client.telemetry == nullptr) config_.client.telemetry = config_.telemetry;
  if (config_.scrape_port >= 0 && config_.client.telemetry != nullptr) {
    scrape_ = std::make_unique<obs::ScrapeServer>(
        *config_.client.telemetry, static_cast<std::uint16_t>(config_.scrape_port));
  }
}

ThreadedSystem::~ThreadedSystem() {
  // Phased teardown. The scrape server goes first so no HTTP snapshot
  // races teardown. Then client executors and endpoints: once shut down,
  // no delayed hop or datagram can submit to a replica or record a
  // reply. Then replica endpoints (no datagram can reach a worker), then
  // replica workers (an in-flight reply degrades to a counted transport
  // drop and still finds the clients alive), then the clients.
  scrape_.reset();
  for (auto& client : clients_) client->shutdown();
  for (auto& endpoint : replica_endpoints_) endpoint->shutdown();
  replicas_.clear();
  replica_endpoints_.clear();
  clients_.clear();
}

ThreadedReplica& ThreadedSystem::add_replica(stats::SamplerPtr service_time) {
  const ReplicaId id = replica_ids_.next();
  replicas_.push_back(std::make_unique<ThreadedReplica>(id, std::move(service_time),
                                                        rng_.fork("replica").fork(id.value()),
                                                        config_.telemetry));
  if (config_.transport != nullptr) {
    // One host per replica, so transport liveness maps 1:1 to replicas.
    replica_endpoints_.push_back(std::make_unique<ReplicaEndpoint>(
        *config_.transport, *replicas_.back(), HostId{id.value()}));
  }
  return *replicas_.back();
}

ThreadedClient& ThreadedSystem::add_client(core::QosSpec qos) {
  AQUA_REQUIRE(!replicas_.empty(), "add replicas before clients");
  std::vector<ThreadedReplica*> replica_ptrs;
  ThreadedClientConfig client_config = config_.client;
  client_config.id = client_ids_.next();  // distinct trace-id namespaces
  if (config_.transport != nullptr) {
    client_config.transport = config_.transport;
    client_config.host = HostId{1'000 + client_config.id.value()};  // clear of replica hosts
  } else {
    replica_ptrs.reserve(replicas_.size());
    for (auto& replica : replicas_) replica_ptrs.push_back(replica.get());
  }
  clients_.push_back(std::make_unique<ThreadedClient>(
      std::move(replica_ptrs), qos, rng_.fork("client").fork(clients_.size() + 1),
      client_config));
  if (config_.transport != nullptr) {
    // In-process assembly: wire the directory directly — deterministic,
    // no Subscribe/Announce round trip to wait for.
    for (auto& endpoint : replica_endpoints_) {
      clients_.back()->add_peer_replica(endpoint->replica().id(), endpoint->endpoint());
    }
  }
  return *clients_.back();
}

std::vector<ThreadedReplica*> ThreadedSystem::replicas() {
  std::vector<ThreadedReplica*> out;
  out.reserve(replicas_.size());
  for (auto& r : replicas_) out.push_back(r.get());
  return out;
}

std::vector<ReplicaEndpoint*> ThreadedSystem::replica_endpoints() {
  std::vector<ReplicaEndpoint*> out;
  out.reserve(replica_endpoints_.size());
  for (auto& e : replica_endpoints_) out.push_back(e.get());
  return out;
}

std::vector<ThreadedClient*> ThreadedSystem::clients() {
  std::vector<ThreadedClient*> out;
  out.reserve(clients_.size());
  for (auto& c : clients_) out.push_back(c.get());
  return out;
}

std::vector<WorkloadStats> ThreadedSystem::run_workload(std::size_t requests, Duration think) {
  AQUA_REQUIRE(requests >= 1, "workload needs at least one request");
  std::vector<WorkloadStats> stats(clients_.size());
  std::vector<std::thread> drivers;
  drivers.reserve(clients_.size());
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    drivers.emplace_back([this, c, requests, think, &stats] {
      ThreadedClient& client = *clients_[c];
      WorkloadStats& s = stats[c];
      for (std::size_t i = 0; i < requests; ++i) {
        const auto outcome = client.invoke(static_cast<std::int64_t>(i));
        ++s.requests;
        if (outcome.answered) ++s.answered;
        if (outcome.timely) ++s.timely;
        s.mean_response_ms += to_ms(outcome.response_time);
        s.mean_redundancy += static_cast<double>(outcome.redundancy);
        s.mean_selection_overhead_us += static_cast<double>(count_us(outcome.selection_overhead));
        std::this_thread::sleep_for(think);
      }
      const auto n = static_cast<double>(s.requests);
      s.mean_response_ms /= n;
      s.mean_redundancy /= n;
      s.mean_selection_overhead_us /= n;
    });
  }
  for (std::thread& t : drivers) t.join();
  return stats;
}

}  // namespace aqua::runtime
