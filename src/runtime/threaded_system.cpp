#include "runtime/threaded_system.h"

#include <cstdint>
#include <thread>

#include "common/assert.h"
#include "obs/scrape.h"

namespace aqua::runtime {

ThreadedSystem::ThreadedSystem(ThreadedSystemConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.client.telemetry == nullptr) config_.client.telemetry = config_.telemetry;
  if (config_.scrape_port >= 0 && config_.client.telemetry != nullptr) {
    scrape_ = std::make_unique<obs::ScrapeServer>(
        *config_.client.telemetry, static_cast<std::uint16_t>(config_.scrape_port));
  }
}

ThreadedSystem::~ThreadedSystem() {
  // Phased teardown. The scrape server goes first so no HTTP snapshot
  // races teardown. Then client executors: once shut down, no delayed
  // hop can submit to a replica or record a reply. Then replica workers
  // (their in-flight reply callbacks still find the clients alive), then
  // the clients themselves.
  scrape_.reset();
  for (auto& client : clients_) client->shutdown();
  replicas_.clear();
  clients_.clear();
}

ThreadedReplica& ThreadedSystem::add_replica(stats::SamplerPtr service_time) {
  const ReplicaId id = replica_ids_.next();
  replicas_.push_back(std::make_unique<ThreadedReplica>(id, std::move(service_time),
                                                        rng_.fork("replica").fork(id.value()),
                                                        config_.telemetry));
  return *replicas_.back();
}

ThreadedClient& ThreadedSystem::add_client(core::QosSpec qos) {
  AQUA_REQUIRE(!replicas_.empty(), "add replicas before clients");
  std::vector<ThreadedReplica*> replica_ptrs;
  replica_ptrs.reserve(replicas_.size());
  for (auto& replica : replicas_) replica_ptrs.push_back(replica.get());
  ThreadedClientConfig client_config = config_.client;
  client_config.id = client_ids_.next();  // distinct trace-id namespaces
  clients_.push_back(std::make_unique<ThreadedClient>(
      std::move(replica_ptrs), qos, rng_.fork("client").fork(clients_.size() + 1),
      client_config));
  return *clients_.back();
}

std::vector<ThreadedReplica*> ThreadedSystem::replicas() {
  std::vector<ThreadedReplica*> out;
  out.reserve(replicas_.size());
  for (auto& r : replicas_) out.push_back(r.get());
  return out;
}

std::vector<ThreadedClient*> ThreadedSystem::clients() {
  std::vector<ThreadedClient*> out;
  out.reserve(clients_.size());
  for (auto& c : clients_) out.push_back(c.get());
  return out;
}

std::vector<WorkloadStats> ThreadedSystem::run_workload(std::size_t requests, Duration think) {
  AQUA_REQUIRE(requests >= 1, "workload needs at least one request");
  std::vector<WorkloadStats> stats(clients_.size());
  std::vector<std::thread> drivers;
  drivers.reserve(clients_.size());
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    drivers.emplace_back([this, c, requests, think, &stats] {
      ThreadedClient& client = *clients_[c];
      WorkloadStats& s = stats[c];
      for (std::size_t i = 0; i < requests; ++i) {
        const auto outcome = client.invoke(static_cast<std::int64_t>(i));
        ++s.requests;
        if (outcome.answered) ++s.answered;
        if (outcome.timely) ++s.timely;
        s.mean_response_ms += to_ms(outcome.response_time);
        s.mean_redundancy += static_cast<double>(outcome.redundancy);
        s.mean_selection_overhead_us += static_cast<double>(count_us(outcome.selection_overhead));
        std::this_thread::sleep_for(think);
      }
      const auto n = static_cast<double>(s.requests);
      s.mean_response_ms /= n;
      s.mean_redundancy /= n;
      s.mean_selection_overhead_us /= n;
    });
  }
  for (std::thread& t : drivers) t.join();
  return stats;
}

}  // namespace aqua::runtime
