#include "runtime/threaded_client.h"

#include <algorithm>

#include "common/assert.h"
#include "core/model_cache.h"
#include "obs/telemetry.h"

namespace aqua::runtime {

Duration NetDelayModel::sample(Rng& rng) const {
  Duration delay = base;
  if (jitter_max > Duration::zero()) delay += Duration{rng.uniform_int(0, count_us(jitter_max))};
  return modulation ? modulation->apply(delay) : delay;
}

struct ThreadedClient::RequestState {
  std::mutex mutex;
  std::condition_variable cv;
  bool delivered = false;
  proto::Reply first_reply;
};

ThreadedClient::ThreadedClient(std::vector<ThreadedReplica*> replicas, core::QosSpec qos, Rng rng,
                               ThreadedClientConfig config)
    : replicas_(std::move(replicas)),
      qos_(qos),
      rng_(std::move(rng)),
      config_(config),
      model_cache_(std::make_shared<core::ModelCache>()),
      selector_(config.selection, core::ResponseTimeModel{config.model, model_cache_}),
      repository_(config.repository),
      tracker_(config.failure_tracker) {
  qos_.validate();
  AQUA_REQUIRE(!replicas_.empty(), "threaded client needs at least one replica");
  AQUA_REQUIRE(config_.give_up_deadline_factor >= 1, "give-up factor must be >= 1");
  if (config_.telemetry != nullptr) {
    obs_ = config_.telemetry;
    if (obs_->spans_enabled()) span_sink_ = obs_;
    auto& metrics = config_.telemetry->metrics();
    requests_counter_ = &metrics.counter("threaded.requests");
    answered_counter_ = &metrics.counter("threaded.answered");
    timely_counter_ = &metrics.counter("threaded.timely");
    timing_failures_counter_ = &metrics.counter("threaded.timing_failures");
    cold_starts_counter_ = &metrics.counter("threaded.cold_starts");
    response_time_histogram_ = &metrics.histogram("threaded.response_time_us");
    selection_overhead_histogram_ = &metrics.histogram("threaded.selection_overhead_us");
  }
  std::lock_guard lock(mutex_);
  for (const ThreadedReplica* replica : replicas_) repository_.add_replica(replica->id());
}

ThreadedClient::Outcome ThreadedClient::invoke(std::int64_t argument) {
  using SteadyClock = std::chrono::steady_clock;
  const auto t0 = SteadyClock::now();
  const TimePoint wall_t0 = span_sink_ != nullptr ? span_sink_->wall_now() : TimePoint{};

  Outcome outcome;
  proto::Request request;
  core::SelectionResult selection;
  std::vector<ThreadedReplica*> targets;
  core::QosSpec qos_snapshot;
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;
  obs::SpanContext request_ctx{};
  {
    std::lock_guard lock(mutex_);
    qos_snapshot = qos_;
    request.id = RequestId{next_request_++};
    request.argument = argument;

    // delta measured from the real wall clock (§5.3.3), previous value
    // used for this selection.
    const auto select_start = SteadyClock::now();
    selection = selector_.select(repository_.observe_all(), qos_snapshot, overhead_.current());
    const auto select_end = SteadyClock::now();
    outcome.selection_overhead =
        std::chrono::duration_cast<Duration>(select_end - select_start);
    overhead_.record(outcome.selection_overhead);

    outcome.redundancy = selection.selected.size();
    outcome.cold_start = selection.cold_start;
    for (ReplicaId id : selection.selected) {
      auto it = std::find_if(replicas_.begin(), replicas_.end(),
                             [id](const ThreadedReplica* r) { return r->id() == id; });
      if (it != replicas_.end()) targets.push_back(*it);
    }
  }

  if (span_sink_ != nullptr) {
    trace_id = obs::make_trace_id(config_.id, request.id);
    root_span = span_sink_->next_span_id();
    const std::uint64_t dispatch_span = span_sink_->next_span_id();
    span_sink_->record_span({.trace_id = trace_id,
                             .span_id = dispatch_span,
                             .parent_span_id = root_span,
                             .kind = obs::SpanKind::kDispatch,
                             .client = config_.id,
                             .request = request.id,
                             .replica = {},
                             .start = wall_t0,
                             .end = wall_t0 + outcome.selection_overhead});
    request_ctx = {.trace_id = trace_id,
                   .parent_span_id = dispatch_span,
                   .leg = obs::SpanKind::kRequestLeg,
                   .replica = {}};
  }

  auto state = std::make_shared<RequestState>();
  for (ThreadedReplica* replica : targets) {
    Duration out_delay;
    {
      std::lock_guard lock(mutex_);
      out_delay = config_.net.sample(rng_);
    }
    executor_.post_after(out_delay, [this, replica, request, state, request_ctx] {
      replica->submit(request, [this, state](const proto::Reply& reply) {
        Duration back_delay;
        {
          std::lock_guard lock(mutex_);
          back_delay = config_.net.sample(rng_);
        }
        executor_.post_after(back_delay, [this, state, reply] {
          {
            std::lock_guard lock(mutex_);
            if (repository_.contains(reply.replica)) {
              repository_.record_perf(
                  reply.replica,
                  core::PerfSample{reply.perf.service_time, reply.perf.queuing_delay,
                                   reply.perf.queue_length},
                  TimePoint{}, reply.method);
            }
          }
          std::lock_guard slock(state->mutex);
          if (!state->delivered) {
            state->delivered = true;
            state->first_reply = reply;
            state->cv.notify_all();
          }
        });
      }, request_ctx);
    });
  }

  // Wait for the first reply or give up.
  const auto give_up = t0 + qos_snapshot.deadline * config_.give_up_deadline_factor;
  proto::Reply first_reply;
  {
    std::unique_lock slock(state->mutex);
    state->cv.wait_until(slock, give_up, [&state] { return state->delivered; });
    outcome.answered = state->delivered;
    if (outcome.answered) {
      first_reply = state->first_reply;
      outcome.first_replica = first_reply.replica;
      outcome.result = first_reply.result;
    }
  }

  const auto t4 = SteadyClock::now();
  outcome.response_time = std::chrono::duration_cast<Duration>(t4 - t0);
  outcome.timely = outcome.answered && outcome.response_time <= qos_snapshot.deadline;
  if (span_sink_ != nullptr) {
    const TimePoint wall_t4 = wall_t0 + outcome.response_time;
    if (outcome.answered) {
      span_sink_->record_span({.trace_id = trace_id,
                               .span_id = span_sink_->next_span_id(),
                               .parent_span_id = root_span,
                               .kind = obs::SpanKind::kFirstReply,
                               .client = config_.id,
                               .request = request.id,
                               .replica = outcome.first_replica,
                               .start = wall_t0 + outcome.selection_overhead,
                               .end = wall_t4,
                               .ok = outcome.timely});
    }
    // The root closes whether or not any replica answered — a crashed
    // target set still yields a complete (failed) trace.
    span_sink_->record_span({.trace_id = trace_id,
                             .span_id = root_span,
                             .parent_span_id = 0,
                             .kind = obs::SpanKind::kRequest,
                             .client = config_.id,
                             .request = request.id,
                             .replica = outcome.first_replica,
                             .start = wall_t0,
                             .end = wall_t4,
                             .ok = outcome.timely});
  }
  if (requests_counter_ != nullptr) {
    requests_counter_->add();
    if (outcome.answered) answered_counter_->add();
    (outcome.timely ? timely_counter_ : timing_failures_counter_)->add();
    if (outcome.cold_start) cold_starts_counter_->add();
    response_time_histogram_->record(outcome.response_time);
    selection_overhead_histogram_->record(outcome.selection_overhead);
  }
  {
    std::lock_guard lock(mutex_);
    tracker_.record(outcome.timely);
    if (obs_ != nullptr) {
      const bool violating = tracker_.violates(qos_snapshot.min_probability);
      if (violating && !violation_reported_) {
        violation_reported_ = true;
        obs_->record_alert({.kind = obs::AlertKind::kQosViolation,
                            .at = obs_->wall_now(),
                            .client = config_.id,
                            .replica = {},
                            .observed = tracker_.timely_fraction(),
                            .threshold = qos_snapshot.min_probability,
                            .detail = "timely fraction below requested minimum"});
      } else if (!violating && violation_reported_) {
        violation_reported_ = false;
        obs_->record_alert({.kind = obs::AlertKind::kQosRecovered,
                            .at = obs_->wall_now(),
                            .client = config_.id,
                            .replica = {},
                            .observed = tracker_.timely_fraction(),
                            .threshold = qos_snapshot.min_probability,
                            .detail = "timely fraction recovered"});
      }
    }
    if (outcome.answered) {
      // Two-way "gateway" delay: total minus queuing minus service.
      const Duration td = outcome.response_time - first_reply.perf.queuing_delay -
                          first_reply.perf.service_time;
      if (repository_.contains(first_reply.replica)) {
        repository_.record_gateway_delay(first_reply.replica, std::max(Duration::zero(), td),
                                         TimePoint{});
      }
    }
  }
  return outcome;
}

void ThreadedClient::remove_replica(ReplicaId id) {
  std::lock_guard lock(mutex_);
  repository_.remove_replica(id);
  model_cache_->invalidate(id);
  std::erase_if(replicas_, [id](const ThreadedReplica* r) { return r->id() == id; });
}

void ThreadedClient::set_qos(core::QosSpec qos) {
  qos.validate();
  std::lock_guard lock(mutex_);
  qos_ = qos;
  tracker_.reset();
}

double ThreadedClient::timely_fraction() const {
  std::lock_guard lock(mutex_);
  return tracker_.timely_fraction();
}

bool ThreadedClient::qos_violated() const {
  std::lock_guard lock(mutex_);
  return tracker_.violates(qos_.min_probability);
}

std::size_t ThreadedClient::known_replicas() const {
  std::lock_guard lock(mutex_);
  return repository_.replica_count();
}

}  // namespace aqua::runtime
