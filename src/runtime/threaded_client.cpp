#include "runtime/threaded_client.h"

#include <algorithm>

#include "common/assert.h"
#include "core/model_cache.h"
#include "obs/telemetry.h"

namespace aqua::runtime {

Duration NetDelayModel::sample(Rng& rng) const {
  Duration delay = base;
  if (jitter_max > Duration::zero()) delay += Duration{rng.uniform_int(0, count_us(jitter_max))};
  return modulation ? modulation->apply(delay) : delay;
}

namespace {

/// Steady-clock instants mapped onto the TimePoint axis so the
/// repository's freshness fields (last_update, observation silence) are
/// meaningful in the threaded runtime — they used to be recorded as
/// TimePoint{}, which made every staleness question unanswerable.
TimePoint mono_now() {
  return TimePoint{} + std::chrono::duration_cast<Duration>(
                           std::chrono::steady_clock::now().time_since_epoch());
}

/// The threaded runtime always guards against stale samples: UDP (and
/// the executor's delay-injected in-process hops) can reorder replies,
/// and unlike the sim there is no bit-identity contract to preserve.
core::RepositoryConfig with_stale_guard(core::RepositoryConfig config) {
  config.reject_stale_samples = true;
  return config;
}

}  // namespace

struct ThreadedClient::RequestState {
  std::mutex mutex;
  std::condition_variable cv;
  bool delivered = false;
  proto::Reply first_reply;
  /// Completion predicate (guarded by mutex, like delivered). Left
  /// unarmed — first-of-n — for the default config, so delivery stays
  /// "first reply wins" exactly; armed k-of-n delivers at the k-th
  /// distinct chunk.
  core::ReplyCollector collector;
  /// Every replica that has replied so far, for coded cancels: a replier
  /// finished its chunk, so there is nothing left to withdraw from it.
  std::vector<ReplicaId> repliers;
};

ThreadedClient::ThreadedClient(std::vector<ThreadedReplica*> replicas, core::QosSpec qos, Rng rng,
                               ThreadedClientConfig config)
    : replicas_(std::move(replicas)),
      qos_(qos),
      rng_(std::move(rng)),
      config_(config),
      model_cache_(std::make_shared<core::ModelCache>()),
      selector_(config.selection, core::ResponseTimeModel{config.model, model_cache_}),
      repository_(with_stale_guard(config.repository)),
      tracker_(config.failure_tracker),
      transport_(config.transport) {
  qos_.validate();
  AQUA_REQUIRE(!replicas_.empty() || transport_ != nullptr,
               "threaded client needs at least one replica (or a transport to discover them)");
  AQUA_REQUIRE(config_.give_up_deadline_factor >= 1, "give-up factor must be >= 1");
  if (config_.telemetry != nullptr) {
    obs_ = config_.telemetry;
    if (obs_->spans_enabled()) span_sink_ = obs_;
    auto& metrics = config_.telemetry->metrics();
    requests_counter_ = &metrics.counter("threaded.requests");
    answered_counter_ = &metrics.counter("threaded.answered");
    timely_counter_ = &metrics.counter("threaded.timely");
    timing_failures_counter_ = &metrics.counter("threaded.timing_failures");
    cold_starts_counter_ = &metrics.counter("threaded.cold_starts");
    response_time_histogram_ = &metrics.histogram("threaded.response_time_us");
    selection_overhead_histogram_ = &metrics.histogram("threaded.selection_overhead_us");
  }
  {
    std::lock_guard lock(mutex_);
    for (const ThreadedReplica* replica : replicas_) repository_.add_replica(replica->id());
  }
  if (transport_ != nullptr) {
    endpoint_ = transport_->create_endpoint(
        config_.host,
        [this](EndpointId from, const net::Payload& message) { on_receive(from, message); });
    // The transport's subscriber list cannot shrink, so the callback
    // reaches this client through a relay the destructor severs.
    evict_relay_ = std::make_shared<HostEvictRelay>();
    evict_relay_->client = this;
    transport_->subscribe_host_state(
        [relay = evict_relay_](HostId host, bool alive) {
          if (alive) return;
          std::lock_guard guard(relay->mutex);
          if (relay->client != nullptr) relay->client->evict_host(host);
        });
  }
}

ThreadedClient::~ThreadedClient() { shutdown(); }

void ThreadedClient::shutdown() {
  if (transport_ != nullptr) {
    if (evict_relay_ != nullptr) {
      std::lock_guard guard(evict_relay_->mutex);
      evict_relay_->client = nullptr;
    }
    // Joins the endpoint's delivery threads: no on_receive after this.
    // Must not hold mutex_ here — a delivery blocked on it would deadlock
    // the join.
    if (!endpoint_destroyed_.exchange(true)) transport_->destroy_endpoint(endpoint_);
  }
  executor_.shutdown();
}

void ThreadedClient::add_peer_replica(ReplicaId replica, EndpointId endpoint) {
  AQUA_REQUIRE(transport_ != nullptr, "add_peer_replica requires transport mode");
  std::lock_guard lock(mutex_);
  peer_replicas_[replica] = endpoint;
  if (!repository_.contains(replica)) repository_.add_replica(replica);
}

void ThreadedClient::subscribe_to(EndpointId peer) {
  AQUA_REQUIRE(transport_ != nullptr, "subscribe_to requires transport mode");
  transport_->unicast(endpoint_, peer,
                      net::Payload::make(proto::Subscribe{config_.id, endpoint_},
                                         proto::kSubscribeBytes));
}

void ThreadedClient::on_receive(EndpointId from, const net::Payload& message) {
  if (const auto* reply = message.get_if<proto::Reply>()) {
    std::shared_ptr<RequestState> state;
    {
      std::lock_guard lock(mutex_);
      if (repository_.contains(reply->replica)) {
        repository_.record_perf(reply->replica,
                                core::PerfSample{reply->perf.service_time,
                                                 reply->perf.queuing_delay,
                                                 reply->perf.queue_length,
                                                 reply->perf.sample_seq},
                                mono_now(), reply->method);
      }
      auto it = outstanding_.find(reply->request);
      if (it != outstanding_.end()) state = it->second;
    }
    if (state != nullptr) {
      std::lock_guard slock(state->mutex);
      state->repliers.push_back(reply->replica);
      if (!state->delivered &&
          state->collector.record(reply->replica, reply->chunk, reply->code_id)) {
        state->delivered = true;
        state->first_reply = *reply;
        state->cv.notify_all();
      }
    }
    return;
  }
  if (const auto* announce = message.get_if<proto::Announce>()) {
    // The announced endpoint id is meaningless outside the replica's own
    // process; the sender handle is how WE reach it.
    add_peer_replica(announce->replica, from);
    return;
  }
  if (const auto* update = message.get_if<proto::PerfUpdate>()) {
    std::lock_guard lock(mutex_);
    if (repository_.contains(update->replica)) {
      repository_.record_perf(update->replica,
                              core::PerfSample{update->perf.service_time,
                                               update->perf.queuing_delay,
                                               update->perf.queue_length,
                                               update->perf.sample_seq},
                              mono_now(), update->method);
    }
  }
}

void ThreadedClient::evict_host(HostId host) {
  std::lock_guard lock(mutex_);
  for (auto it = peer_replicas_.begin(); it != peer_replicas_.end();) {
    const EndpointId endpoint = it->second;
    if (transport_->endpoint_exists(endpoint) && transport_->endpoint_host(endpoint) == host) {
      repository_.remove_replica(it->first);
      model_cache_->invalidate(it->first);
      it = peer_replicas_.erase(it);
    } else {
      ++it;
    }
  }
}

ThreadedClient::Outcome ThreadedClient::invoke(std::int64_t argument) {
  using SteadyClock = std::chrono::steady_clock;
  const auto t0 = SteadyClock::now();
  const TimePoint wall_t0 = obs_ != nullptr ? obs_->wall_now() : TimePoint{};

  Outcome outcome;
  proto::Request request;
  core::SelectionResult selection;
  core::DispatchPlan plan;
  std::vector<ThreadedReplica*> targets;
  std::vector<ThreadedReplica*> hedge_targets;
  std::vector<EndpointId> target_endpoints;
  // Transport mode keeps (replica, endpoint) for every copy it sends so
  // cancel-on-first-reply can address the still-pending members.
  std::vector<std::pair<ReplicaId, EndpointId>> primary_peers;
  std::vector<std::pair<ReplicaId, EndpointId>> hedge_peers;
  core::QosSpec qos_snapshot;
  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;
  obs::SpanContext request_ctx{};
  auto state = std::make_shared<RequestState>();
  {
    std::lock_guard lock(mutex_);
    qos_snapshot = qos_;
    request.id = RequestId{next_request_++};
    request.client = config_.id;
    request.argument = argument;

    // delta measured from the real wall clock (§5.3.3), previous value
    // used for this selection.
    const auto observations = repository_.observe_all(core::kDefaultMethod, mono_now());
    const auto select_start = SteadyClock::now();
    // rng_ powers the load score's two-choice spread; the default config
    // never draws from it here.
    selection = selector_.select(observations, qos_snapshot, overhead_.current(), &rng_);
    const auto select_end = SteadyClock::now();
    outcome.selection_overhead =
        std::chrono::duration_cast<Duration>(select_end - select_start);
    overhead_.record(outcome.selection_overhead);

    if (config_.dispatch.is_default()) {
      plan.primary = selection.selected;
    } else {
      plan = core::plan_dispatch(config_.dispatch, selection, observations, qos_snapshot,
                                 selector_.model());
    }
    // Client-side concurrency compensation: charge the primary wave now;
    // hedge copies are charged only if the timer actually fires.
    for (ReplicaId id : plan.primary) repository_.note_dispatch(id);
    outcome.redundancy = plan.primary.size() + plan.hedge.size();
    outcome.cold_start = selection.cold_start;
    outcome.hedged = plan.hedged;
    outcome.code_k = plan.code_k;
    // Arm the completion predicate before any copy goes out. Coded
    // dispatches tag their generation with the request id; uncoded ones
    // (quorum, and everything default) match the wire default of zero.
    if (!plan.completion.is_default()) {
      state->collector.arm(plan.completion, plan.coded ? request.id.value() : 0);
    }
    if (plan.coded) {
      request.code_k = plan.code_k;
      request.code_id = request.id.value();
    }
    if (transport_ != nullptr) {
      for (ReplicaId id : plan.primary) {
        auto it = peer_replicas_.find(id);
        if (it != peer_replicas_.end()) {
          primary_peers.emplace_back(id, it->second);
          target_endpoints.push_back(it->second);
        }
      }
      for (ReplicaId id : plan.hedge) {
        auto it = peer_replicas_.find(id);
        if (it != peer_replicas_.end()) hedge_peers.emplace_back(id, it->second);
      }
      outstanding_.emplace(request.id, state);
    } else {
      auto resolve = [this](std::span<const ReplicaId> ids, std::vector<ThreadedReplica*>& out) {
        for (ReplicaId id : ids) {
          auto it = std::find_if(replicas_.begin(), replicas_.end(),
                                 [id](const ThreadedReplica* r) { return r->id() == id; });
          if (it != replicas_.end()) out.push_back(*it);
        }
      };
      resolve(plan.primary, targets);
      resolve(plan.hedge, hedge_targets);
    }
  }

  if (span_sink_ != nullptr) {
    trace_id = obs::make_trace_id(config_.id, request.id);
    root_span = span_sink_->next_span_id();
    const std::uint64_t dispatch_span = span_sink_->next_span_id();
    span_sink_->record_span({.trace_id = trace_id,
                             .span_id = dispatch_span,
                             .parent_span_id = root_span,
                             .kind = obs::SpanKind::kDispatch,
                             .client = config_.id,
                             .request = request.id,
                             .replica = {},
                             .start = wall_t0,
                             .end = wall_t0 + outcome.selection_overhead});
    request_ctx = {.trace_id = trace_id,
                   .parent_span_id = dispatch_span,
                   .leg = obs::SpanKind::kRequestLeg,
                   .replica = {}};
  }

  // Fresh chunk indices for coded copies — rateless MDS, so primaries
  // and later hedge copies all draw from one never-repeating sequence.
  const bool coded = plan.coded;
  std::uint32_t next_chunk = 0;

  // In-process send: one delay-injected hop out, one back, the reply
  // harvested into the repository before delivery resolution. The copy
  // is taken by value so coded dispatch can stamp a distinct chunk per
  // target.
  auto post_to = [this, &state, &request_ctx](ThreadedReplica* replica, proto::Request copy) {
    Duration out_delay;
    {
      std::lock_guard lock(mutex_);
      out_delay = config_.net.sample(rng_);
    }
    executor_.post_after(out_delay, [this, replica, copy = std::move(copy), state, request_ctx] {
      replica->submit(copy, [this, state](const proto::Reply& reply) {
        Duration back_delay;
        {
          std::lock_guard lock(mutex_);
          back_delay = config_.net.sample(rng_);
        }
        executor_.post_after(back_delay, [this, state, reply] {
          {
            std::lock_guard lock(mutex_);
            if (repository_.contains(reply.replica)) {
              repository_.record_perf(
                  reply.replica,
                  core::PerfSample{reply.perf.service_time, reply.perf.queuing_delay,
                                   reply.perf.queue_length, reply.perf.sample_seq},
                  mono_now(), reply.method);
            }
          }
          std::lock_guard slock(state->mutex);
          state->repliers.push_back(reply.replica);
          if (!state->delivered &&
              state->collector.record(reply.replica, reply.chunk, reply.code_id)) {
            state->delivered = true;
            state->first_reply = reply;
            state->cv.notify_all();
          }
        });
      }, request_ctx);
    });
  };
  auto stamp = [&](proto::Request copy) {
    if (coded) copy.chunk = next_chunk++;
    return copy;
  };

  if (transport_ != nullptr) {
    if (coded) {
      // Real network, coded: each member gets its own chunk-request.
      for (const auto& [replica_id, peer] : primary_peers) {
        net::Payload payload = net::Payload::make(stamp(request), proto::kRequestBytes);
        if (request_ctx.valid()) payload.set_span(request_ctx);
        transport_->unicast(endpoint_, peer, std::move(payload));
      }
    } else {
      // Real network: the wire replaces the injected delay hops; the
      // reply path runs through on_receive.
      net::Payload payload = net::Payload::make(request, proto::kRequestBytes);
      if (request_ctx.valid()) payload.set_span(request_ctx);
      transport_->multicast(endpoint_, target_endpoints, std::move(payload));
    }
  }
  for (ThreadedReplica* replica : targets) post_to(replica, stamp(request));

  const auto give_up = t0 + qos_snapshot.deadline * config_.give_up_deadline_factor;

  // Hedged mode: hold the backups until the hedge timer expires, unless
  // the primary answers first (the common case — the timer sits at the
  // tail of the primary's predicted response pmf).
  bool hedge_fired = false;
  if (!hedge_peers.empty() || !hedge_targets.empty()) {
    const auto hedge_at = std::min(give_up, t0 + plan.hedge_delay);
    std::unique_lock slock(state->mutex);
    state->cv.wait_until(slock, hedge_at, [&state] { return state->delivered; });
    hedge_fired = !state->delivered;
  }
  if (hedge_fired) {
    outcome.hedge_fired = true;
    hedges_fired_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(mutex_);
      for (ReplicaId id : plan.hedge) repository_.note_dispatch(id);
    }
    if (!hedge_peers.empty()) {
      if (coded) {
        for (const auto& [replica_id, peer] : hedge_peers) {
          net::Payload payload = net::Payload::make(stamp(request), proto::kRequestBytes);
          if (request_ctx.valid()) payload.set_span(request_ctx);
          transport_->unicast(endpoint_, peer, std::move(payload));
        }
      } else {
        std::vector<EndpointId> hedge_endpoints;
        hedge_endpoints.reserve(hedge_peers.size());
        for (const auto& [id, endpoint] : hedge_peers) hedge_endpoints.push_back(endpoint);
        net::Payload payload = net::Payload::make(request, proto::kRequestBytes);
        if (request_ctx.valid()) payload.set_span(request_ctx);
        transport_->multicast(endpoint_, hedge_endpoints, std::move(payload));
      }
    }
    for (ThreadedReplica* replica : hedge_targets) post_to(replica, stamp(request));
  }

  // Wait for the completing reply (the first one, unless a non-default
  // predicate was armed) or give up. The give-up bound also covers the
  // coded stall path — k−1 chunks then silence returns unanswered
  // instead of hanging.
  proto::Reply first_reply;
  std::vector<ReplicaId> already_replied;
  {
    std::unique_lock slock(state->mutex);
    state->cv.wait_until(slock, give_up, [&state] { return state->delivered; });
    outcome.answered = state->delivered;
    outcome.chunks_received = state->collector.distinct();
    if (outcome.answered) {
      first_reply = state->first_reply;
      outcome.first_replica = first_reply.replica;
      outcome.result = first_reply.result;
    }
    if (coded) already_replied = state->repliers;
  }

  // Cancel-on-first-reply: purge queued copies at every member that was
  // sent the request and has not replied — for coded dispatch that is
  // every replica still owing a chunk beyond the k-th. A copy already in
  // service is never interrupted (the replica ignores the cancel), and a
  // backup whose hedge never fired was never sent anything to purge.
  if (config_.dispatch.cancel_on_first_reply && outcome.answered) {
    const proto::Cancel cancel{request.id, request.client, request.method};
    auto replied = [&](ReplicaId id) {
      if (!coded) return id == outcome.first_replica;
      return std::find(already_replied.begin(), already_replied.end(), id) !=
             already_replied.end();
    };
    std::size_t sent = 0;
    if (transport_ != nullptr) {
      auto cancel_peers = [&](const std::vector<std::pair<ReplicaId, EndpointId>>& peers) {
        for (const auto& [id, endpoint] : peers) {
          if (replied(id)) continue;
          transport_->unicast(endpoint_, endpoint,
                              net::Payload::make(cancel, proto::kCancelBytes));
          ++sent;
        }
      };
      cancel_peers(primary_peers);
      if (hedge_fired) cancel_peers(hedge_peers);
    } else {
      auto cancel_targets = [&](const std::vector<ThreadedReplica*>& list) {
        for (ThreadedReplica* replica : list) {
          if (replied(replica->id())) continue;
          Duration out_delay;
          {
            std::lock_guard lock(mutex_);
            out_delay = config_.net.sample(rng_);
          }
          executor_.post_after(out_delay, [replica, id = request.id, client = request.client] {
            replica->cancel(id, client);
          });
          ++sent;
        }
      };
      cancel_targets(targets);
      if (hedge_fired) cancel_targets(hedge_targets);
    }
    outcome.cancels_sent = sent;
    cancels_sent_.fetch_add(sent, std::memory_order_relaxed);
  }

  if (transport_ != nullptr) {
    std::lock_guard lock(mutex_);
    outstanding_.erase(request.id);
  }

  const auto t4 = SteadyClock::now();
  outcome.response_time = std::chrono::duration_cast<Duration>(t4 - t0);
  outcome.timely = outcome.answered && outcome.response_time <= qos_snapshot.deadline;
  if (span_sink_ != nullptr) {
    const TimePoint wall_t4 = wall_t0 + outcome.response_time;
    if (outcome.answered) {
      span_sink_->record_span({.trace_id = trace_id,
                               .span_id = span_sink_->next_span_id(),
                               .parent_span_id = root_span,
                               .kind = obs::SpanKind::kFirstReply,
                               .client = config_.id,
                               .request = request.id,
                               .replica = outcome.first_replica,
                               .start = wall_t0 + outcome.selection_overhead,
                               .end = wall_t4,
                               .ok = outcome.timely});
    }
    // The root closes whether or not any replica answered — a crashed
    // target set still yields a complete (failed) trace.
    span_sink_->record_span({.trace_id = trace_id,
                             .span_id = root_span,
                             .parent_span_id = 0,
                             .kind = obs::SpanKind::kRequest,
                             .client = config_.id,
                             .request = request.id,
                             .replica = outcome.first_replica,
                             .start = wall_t0,
                             .end = wall_t4,
                             .ok = outcome.timely});
  }
  if (requests_counter_ != nullptr) {
    requests_counter_->add();
    if (outcome.answered) answered_counter_->add();
    (outcome.timely ? timely_counter_ : timing_failures_counter_)->add();
    if (outcome.cold_start) cold_starts_counter_->add();
    response_time_histogram_->record(outcome.response_time);
    selection_overhead_histogram_->record(outcome.selection_overhead);
  }
  if (obs_ != nullptr) {
    // Same record the simulated gateway emits, so to_run_report
    // aggregates threaded (and multi-process UDP) runs unchanged.
    obs::RequestTrace tr;
    tr.client = config_.id;
    tr.request = request.id;
    tr.t0 = wall_t0;
    tr.t1 = wall_t0 + outcome.selection_overhead;
    tr.deadline = qos_snapshot.deadline;
    tr.min_probability = qos_snapshot.min_probability;
    tr.predicted_probability = selection.predicted_probability;
    tr.redundancy = outcome.redundancy;
    tr.cold_start = outcome.cold_start;
    tr.feasible = selection.feasible;
    tr.answered = outcome.answered;
    tr.timely = outcome.timely;
    if (outcome.answered) {
      tr.t4 = wall_t0 + outcome.response_time;
      tr.response_time = outcome.response_time;
      tr.service_time = first_reply.perf.service_time;
      tr.queuing_delay = first_reply.perf.queuing_delay;
      tr.gateway_delay =
          std::max(Duration::zero(), outcome.response_time - first_reply.perf.queuing_delay -
                                         first_reply.perf.service_time);
      tr.first_replica = first_reply.replica;
    }
    obs_->record_request(tr);
    // Calibration before the violation check below: on the sample that
    // trips both detectors, the drift alert lands first in the ring.
    obs_->record_calibration(obs_->wall_now(), config_.id,
                             outcome.answered ? first_reply.replica : ReplicaId{},
                             selection.predicted_probability, outcome.timely);
  }
  {
    std::lock_guard lock(mutex_);
    tracker_.record(outcome.timely);
    if (obs_ != nullptr) {
      const bool violating = tracker_.violates(qos_snapshot.min_probability);
      if (violating && !violation_reported_) {
        violation_reported_ = true;
        obs_->record_alert({.kind = obs::AlertKind::kQosViolation,
                            .at = obs_->wall_now(),
                            .client = config_.id,
                            .replica = {},
                            .observed = tracker_.timely_fraction(),
                            .threshold = qos_snapshot.min_probability,
                            .detail = "timely fraction below requested minimum"});
      } else if (!violating && violation_reported_) {
        violation_reported_ = false;
        obs_->record_alert({.kind = obs::AlertKind::kQosRecovered,
                            .at = obs_->wall_now(),
                            .client = config_.id,
                            .replica = {},
                            .observed = tracker_.timely_fraction(),
                            .threshold = qos_snapshot.min_probability,
                            .detail = "timely fraction recovered"});
      }
    }
    if (outcome.answered) {
      // Two-way "gateway" delay: total minus queuing minus service.
      const Duration td = outcome.response_time - first_reply.perf.queuing_delay -
                          first_reply.perf.service_time;
      if (repository_.contains(first_reply.replica)) {
        repository_.record_gateway_delay(first_reply.replica, std::max(Duration::zero(), td),
                                         mono_now(), first_reply.perf.sample_seq);
      }
    }
  }
  return outcome;
}

void ThreadedClient::remove_replica(ReplicaId id) {
  std::lock_guard lock(mutex_);
  repository_.remove_replica(id);
  model_cache_->invalidate(id);
  std::erase_if(replicas_, [id](const ThreadedReplica* r) { return r->id() == id; });
}

void ThreadedClient::set_qos(core::QosSpec qos) {
  qos.validate();
  std::lock_guard lock(mutex_);
  qos_ = qos;
  tracker_.reset();
}

double ThreadedClient::timely_fraction() const {
  std::lock_guard lock(mutex_);
  return tracker_.timely_fraction();
}

bool ThreadedClient::qos_violated() const {
  std::lock_guard lock(mutex_);
  return tracker_.violates(qos_.min_probability);
}

std::size_t ThreadedClient::known_replicas() const {
  std::lock_guard lock(mutex_);
  return repository_.replica_count();
}

}  // namespace aqua::runtime
