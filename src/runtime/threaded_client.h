// Wall-clock client handler: the paper's selection loop over real threads.
//
// invoke() runs the same pipeline as the simulated timing fault handler —
// observe repository, select with Algorithm 1 (delta measured from the
// REAL wall clock, as the paper's implementation does), fan the request
// out through delay-injecting channels, deliver the first reply, harvest
// performance data from every reply — and blocks until the first reply or
// a give-up timeout.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/failure_tracker.h"
#include "core/info_repository.h"
#include "core/qos.h"
#include "core/selection.h"
#include "runtime/delayed_executor.h"
#include "runtime/threaded_replica.h"

namespace aqua::runtime {

/// Symmetric one-way "network" delay injected on each hop.
struct NetDelayModel {
  Duration base = usec(200);
  Duration jitter_max = usec(100);

  [[nodiscard]] Duration sample(Rng& rng) const;
};

struct ThreadedClientConfig {
  core::RepositoryConfig repository;
  core::SelectionConfig selection;
  core::ModelConfig model;
  core::FailureTrackerConfig failure_tracker;
  NetDelayModel net;
  /// invoke() returns unanswered after deadline * this factor.
  int give_up_deadline_factor = 4;
};

class ThreadedClient {
 public:
  struct Outcome {
    bool answered = false;
    bool timely = false;
    Duration response_time{};
    std::size_t redundancy = 0;
    bool cold_start = false;
    ReplicaId first_replica{};
    std::int64_t result = 0;
    /// Wall-clock cost of model + selection for this invocation.
    Duration selection_overhead{};
  };

  /// The replica pointers must outlive the client.
  ThreadedClient(std::vector<ThreadedReplica*> replicas, core::QosSpec qos, Rng rng,
                 ThreadedClientConfig config = {});

  /// Issue one request and block for the first reply (or give up).
  Outcome invoke(std::int64_t argument);

  /// Remove a crashed replica from consideration (the runtime analogue of
  /// the membership view change).
  void remove_replica(ReplicaId id);

  void set_qos(core::QosSpec qos);
  [[nodiscard]] const core::QosSpec& qos() const { return qos_; }

  /// Snapshot accessors (thread-safe).
  [[nodiscard]] double timely_fraction() const;
  [[nodiscard]] bool qos_violated() const;
  [[nodiscard]] std::size_t known_replicas() const;

 private:
  struct RequestState;

  std::vector<ThreadedReplica*> replicas_;
  core::QosSpec qos_;
  Rng rng_;
  ThreadedClientConfig config_;
  /// Shared with selector_'s model; guarded by mutex_ like the repository
  /// (selection only ever runs under the lock).
  std::shared_ptr<core::ModelCache> model_cache_;
  core::ReplicaSelector selector_;
  DelayedExecutor executor_;

  mutable std::mutex mutex_;  // guards repository_, tracker_, overhead_, replicas_, rng_
  core::InfoRepository repository_;
  core::TimingFailureTracker tracker_;
  core::OverheadEstimator overhead_;
  std::uint64_t next_request_ = 1;
};

}  // namespace aqua::runtime
