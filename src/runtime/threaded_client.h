// Wall-clock client handler: the paper's selection loop over real threads.
//
// invoke() runs the same pipeline as the simulated timing fault handler —
// observe repository, select with Algorithm 1 (delta measured from the
// REAL wall clock, as the paper's implementation does), fan the request
// out through delay-injecting channels, deliver the first reply, harvest
// performance data from every reply — and blocks until the first reply or
// a give-up timeout.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/failure_tracker.h"
#include "core/info_repository.h"
#include "core/policies.h"
#include "core/qos.h"
#include "core/selection.h"
#include "net/transport.h"
#include "runtime/delayed_executor.h"
#include "runtime/threaded_replica.h"
#include "stats/variates.h"

namespace aqua::obs {
class Counter;
class Histogram;
class Telemetry;
}  // namespace aqua::obs

namespace aqua::runtime {

/// Symmetric one-way "network" delay injected on each hop.
struct NetDelayModel {
  Duration base = usec(200);
  Duration jitter_max = usec(100);

  /// Fault-injection hook: when set, every sampled delay is scaled/offset
  /// through this shared control block — the threaded analogue of a LAN
  /// spike window, retuned by the scenario engine mid-run.
  std::shared_ptr<const stats::LoadModulation> modulation;

  [[nodiscard]] Duration sample(Rng& rng) const;
};

struct ThreadedClientConfig {
  core::RepositoryConfig repository;
  core::SelectionConfig selection;
  core::ModelConfig model;
  core::FailureTrackerConfig failure_tracker;
  NetDelayModel net;
  /// invoke() returns unanswered after deadline * this factor.
  int give_up_deadline_factor = 4;

  /// Speculative-redundancy dispatch (hedged requests, cancel-on-first-
  /// reply, adaptive trimming). The default is the paper's full-K
  /// multicast: invoke() then takes the identity path with no extra
  /// model evaluation or rng draws.
  core::DispatchConfig dispatch;

  /// Identity used for trace ids (obs/span.h packs client + request into
  /// one id, so two clients sharing a hub must have distinct ids).
  /// ThreadedSystem::add_client assigns these automatically.
  ClientId id{};

  /// Optional telemetry hub (non-owning; must outlive the client). The
  /// threaded.* counters and histograms are updated from whichever
  /// threads call invoke() — several clients sharing one hub exercise the
  /// registry's concurrency guarantees. Null keeps every site at one
  /// branch.
  obs::Telemetry* telemetry = nullptr;

  /// Transport mode: when set (non-owning; must outlive the client), the
  /// client creates its own endpoint on `host` and invoke() multicasts
  /// requests over the transport instead of submitting to in-process
  /// replica threads — replicas are discovered via add_peer_replica() or
  /// the Subscribe/Announce handshake, and a host reported dead by the
  /// transport is evicted like a membership view change. The in-process
  /// replica list may then be empty.
  net::Transport* transport = nullptr;
  HostId host{};
};

class ThreadedClient {
 public:
  struct Outcome {
    bool answered = false;
    bool timely = false;
    Duration response_time{};
    std::size_t redundancy = 0;
    bool cold_start = false;
    ReplicaId first_replica{};
    std::int64_t result = 0;
    /// Wall-clock cost of model + selection for this invocation.
    Duration selection_overhead{};
    /// True when the dispatch plan split K (hedged mode, warm history).
    bool hedged = false;
    /// True when the hedge timer expired and the backup copies were sent.
    bool hedge_fired = false;
    /// Cancels sent to still-pending replicas after the completing reply.
    std::size_t cancels_sent = 0;
    /// Coded dispatch: distinct chunks required (0 = uncoded) and
    /// distinct chunk-replies collected by the time invoke() returned.
    std::uint32_t code_k = 0;
    std::size_t chunks_received = 0;
  };

  /// The replica pointers must outlive the client. The list may be empty
  /// only in transport mode (config.transport set).
  ThreadedClient(std::vector<ThreadedReplica*> replicas, core::QosSpec qos, Rng rng,
                 ThreadedClientConfig config = {});
  ~ThreadedClient();

  ThreadedClient(const ThreadedClient&) = delete;
  ThreadedClient& operator=(const ThreadedClient&) = delete;

  /// Issue one request and block for the first reply (or give up).
  Outcome invoke(std::int64_t argument);

  /// Remove a crashed replica from consideration (the runtime analogue of
  /// the membership view change).
  void remove_replica(ReplicaId id);

  /// Transport mode: the client's own endpoint on the transport.
  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }

  /// Transport mode: make `replica`, reachable at `endpoint`, a selection
  /// candidate. Idempotent per replica (later calls update the endpoint).
  void add_peer_replica(ReplicaId replica, EndpointId endpoint);

  /// Transport mode: send a Subscribe to a peer endpoint; its Announce
  /// reply runs add_peer_replica with the replica behind that address.
  void subscribe_to(EndpointId peer);

  void set_qos(core::QosSpec qos);
  [[nodiscard]] const core::QosSpec& qos() const { return qos_; }

  /// Stop message intake: destroy the transport endpoint (joining its
  /// delivery threads) and shut the delay executor down — after this no
  /// in-flight hop or datagram can touch a replica or this client. Part
  /// of ThreadedSystem's phased teardown, called before replica threads
  /// are joined. Idempotent.
  void shutdown();

  /// Snapshot accessors (thread-safe).
  [[nodiscard]] double timely_fraction() const;
  [[nodiscard]] bool qos_violated() const;
  [[nodiscard]] std::size_t known_replicas() const;

  /// Lifetime dispatch counters (thread-safe).
  [[nodiscard]] std::uint64_t hedges_fired() const {
    return hedges_fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cancels_sent() const {
    return cancels_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct RequestState;
  /// Host-eviction relay shared with the transport's subscriber list:
  /// the transport cannot unsubscribe, so the callback goes through this
  /// block and the destructor severs `client` under its mutex.
  struct HostEvictRelay {
    std::mutex mutex;
    ThreadedClient* client = nullptr;
  };

  void on_receive(EndpointId from, const net::Payload& message);
  void evict_host(HostId host);

  std::vector<ThreadedReplica*> replicas_;
  core::QosSpec qos_;
  Rng rng_;
  ThreadedClientConfig config_;
  /// Shared with selector_'s model; guarded by mutex_ like the repository
  /// (selection only ever runs under the lock).
  std::shared_ptr<core::ModelCache> model_cache_;
  core::ReplicaSelector selector_;

  mutable std::mutex mutex_;  // guards repository_, tracker_, overhead_, replicas_, rng_
  core::InfoRepository repository_;
  core::TimingFailureTracker tracker_;
  core::OverheadEstimator overhead_;
  std::uint64_t next_request_ = 1;

  /// Transport mode (null otherwise). peer_replicas_ and outstanding_
  /// are guarded by mutex_; the endpoint is created in the constructor
  /// and destroyed by shutdown().
  net::Transport* transport_ = nullptr;
  EndpointId endpoint_{};
  std::atomic<bool> endpoint_destroyed_{false};
  std::unordered_map<ReplicaId, EndpointId> peer_replicas_;
  std::unordered_map<RequestId, std::shared_ptr<RequestState>> outstanding_;
  std::shared_ptr<HostEvictRelay> evict_relay_;

  /// Alert edge state (guarded by mutex_): the last reported
  /// QoS-violation level, for violation/recovery edge detection.
  bool violation_reported_ = false;

  std::atomic<std::uint64_t> hedges_fired_{0};
  std::atomic<std::uint64_t> cancels_sent_{0};

  /// Null unless telemetry is attached; safe to update without mutex_
  /// (counters and histograms are internally atomic).
  obs::Telemetry* obs_ = nullptr;
  /// Non-null only when telemetry is attached and spans are enabled.
  obs::Telemetry* span_sink_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* answered_counter_ = nullptr;
  obs::Counter* timely_counter_ = nullptr;
  obs::Counter* timing_failures_counter_ = nullptr;
  obs::Counter* cold_starts_counter_ = nullptr;
  obs::Histogram* response_time_histogram_ = nullptr;
  obs::Histogram* selection_overhead_histogram_ = nullptr;

  /// Declared last so it is destroyed FIRST: the executor's worker runs
  /// reply hops that lock mutex_ and write repository_, and its shutdown
  /// joins any in-flight task before the state above is torn down.
  DelayedExecutor executor_;
};

}  // namespace aqua::runtime
