// Assembly for wall-clock deployments: replica threads + clients, with a
// closed-loop workload driver that mirrors the paper's experiment shape
// (issue, wait for the reply, think, repeat) on real threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/replica_endpoint.h"
#include "runtime/threaded_client.h"
#include "runtime/threaded_replica.h"

namespace aqua::obs {
class ScrapeServer;
}

namespace aqua::runtime {

struct ThreadedSystemConfig {
  std::uint64_t seed = 1;
  ThreadedClientConfig client;

  /// Optional telemetry hub (non-owning; must outlive the system),
  /// shared by every replica and — unless client.telemetry is set —
  /// every client. All of them update it concurrently.
  obs::Telemetry* telemetry = nullptr;

  /// When >= 0 and telemetry is attached, serve live scrape endpoints
  /// (/metrics, /snapshot, /trace, ...) on 127.0.0.1:<scrape_port>
  /// (0 picks an ephemeral port; see ScrapeServer).
  int scrape_port = -1;

  /// When set (non-owning; must outlive the system), every replica gets a
  /// transport endpoint (ReplicaEndpoint) and every client multicasts
  /// requests over the transport instead of submitting to replica
  /// threads directly. Null keeps the direct in-process path,
  /// bit-identical to the pre-transport runtime. The transport must be
  /// safe for sends from arbitrary threads (UdpTransport is; the
  /// simulated Lan is not — it belongs to the simulator's single thread).
  net::Transport* transport = nullptr;
};

/// Aggregate outcome of one client's closed-loop workload.
struct WorkloadStats {
  std::size_t requests = 0;
  std::size_t answered = 0;
  std::size_t timely = 0;
  double mean_response_ms = 0.0;
  double mean_redundancy = 0.0;
  double mean_selection_overhead_us = 0.0;

  [[nodiscard]] double failure_probability() const {
    return requests == 0 ? 0.0
                         : 1.0 - static_cast<double>(timely) / static_cast<double>(requests);
  }
};

class ThreadedSystem {
 public:
  explicit ThreadedSystem(ThreadedSystemConfig config = {});
  ~ThreadedSystem();

  ThreadedSystem(const ThreadedSystem&) = delete;
  ThreadedSystem& operator=(const ThreadedSystem&) = delete;

  /// Add a replica worker thread with the given service-time sampler.
  ThreadedReplica& add_replica(stats::SamplerPtr service_time);

  /// Add a client over all replicas added SO FAR.
  ThreadedClient& add_client(core::QosSpec qos);

  [[nodiscard]] std::vector<ThreadedReplica*> replicas();
  [[nodiscard]] std::vector<ThreadedClient*> clients();

  /// Transport mode: the endpoint wrappers, index-aligned with replicas().
  [[nodiscard]] std::vector<ReplicaEndpoint*> replica_endpoints();

  /// Run every client's closed-loop workload concurrently (one driver
  /// thread per client): `requests` requests each, sleeping `think`
  /// between a reply and the next request. Blocks until all finish.
  std::vector<WorkloadStats> run_workload(std::size_t requests, Duration think);

  /// Live scrape server, or nullptr when scrape_port < 0 / no telemetry.
  [[nodiscard]] obs::ScrapeServer* scrape_server() { return scrape_.get(); }

 private:
  ThreadedSystemConfig config_;
  Rng rng_;
  IdGenerator<ReplicaId> replica_ids_;
  IdGenerator<ClientId> client_ids_;
  std::vector<std::unique_ptr<ThreadedReplica>> replicas_;
  std::vector<std::unique_ptr<ReplicaEndpoint>> replica_endpoints_;
  std::vector<std::unique_ptr<ThreadedClient>> clients_;
  std::unique_ptr<obs::ScrapeServer> scrape_;
};

}  // namespace aqua::runtime
