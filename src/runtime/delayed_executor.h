// Single-threaded delayed-task executor (wall clock).
//
// Plays the role the event queue plays in the simulation: "network"
// delays in the threaded runtime are tasks posted with a deadline. One
// worker thread pops tasks in deadline order and runs them.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aqua::runtime {

class DelayedExecutor {
 public:
  using Clock = std::chrono::steady_clock;
  using Task = std::function<void()>;

  DelayedExecutor();
  ~DelayedExecutor();

  DelayedExecutor(const DelayedExecutor&) = delete;
  DelayedExecutor& operator=(const DelayedExecutor&) = delete;

  /// Run `task` after `delay` (>= 0) on the executor thread. Returns
  /// false if the executor is shutting down.
  bool post_after(std::chrono::microseconds delay, Task task);

  /// Stop accepting tasks, discard pending ones, join the thread.
  void shutdown();

 private:
  struct Entry {
    Clock::time_point at;
    std::uint64_t seq;
    Task task;
  };
  struct Order {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void worker();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Order> tasks_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace aqua::runtime
