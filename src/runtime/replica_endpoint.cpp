#include "runtime/replica_endpoint.h"

#include "proto/messages.h"

namespace aqua::runtime {

ReplicaEndpoint::ReplicaEndpoint(net::Transport& transport, ThreadedReplica& replica,
                                 const EndpointFactory& factory)
    : transport_(transport), replica_(replica) {
  endpoint_ = factory(
      [this](EndpointId from, const net::Payload& message) { on_receive(from, message); });
}

ReplicaEndpoint::ReplicaEndpoint(net::Transport& transport, ThreadedReplica& replica, HostId host)
    : ReplicaEndpoint(transport, replica, [&transport, host](net::ReceiveFn fn) {
        return transport.create_endpoint(host, std::move(fn));
      }) {}

ReplicaEndpoint::~ReplicaEndpoint() { shutdown(); }

void ReplicaEndpoint::shutdown() {
  if (!shut_down_.exchange(true)) transport_.destroy_endpoint(endpoint_);
}

void ReplicaEndpoint::on_receive(EndpointId from, const net::Payload& message) {
  if (const auto* request = message.get_if<proto::Request>()) {
    const obs::SpanContext request_ctx = message.span();
    // The reply callback runs on the replica's worker thread; both
    // transports accept sends from any thread.
    replica_.submit(
        *request,
        [this, from, request_ctx](const proto::Reply& reply) {
          net::Payload payload = net::Payload::make(reply, proto::kReplyBytes);
          if (request_ctx.valid()) {
            payload.set_span({.trace_id = request_ctx.trace_id,
                              .parent_span_id = request_ctx.parent_span_id,
                              .leg = obs::SpanKind::kReplyLeg,
                              .replica = reply.replica});
          }
          transport_.unicast(endpoint_, from, std::move(payload));
        },
        request_ctx);
    return;
  }
  if (const auto* cancel = message.get_if<proto::Cancel>()) {
    // Best-effort: purges the queued copy if service has not started;
    // otherwise the reply is already on its way and the client drops it.
    replica_.cancel(cancel->request, cancel->client);
    return;
  }
  if (message.get_if<proto::Subscribe>() != nullptr) {
    transport_.unicast(endpoint_, from,
                       net::Payload::make(proto::Announce{replica_.id(), endpoint_},
                                          proto::kAnnounceBytes));
  }
}

}  // namespace aqua::runtime
