#include "runtime/replica_endpoint.h"

#include "obs/telemetry.h"
#include "proto/messages.h"

namespace aqua::runtime {

ReplicaEndpoint::ReplicaEndpoint(net::Transport& transport, ThreadedReplica& replica,
                                 const EndpointFactory& factory, obs::Telemetry* telemetry)
    : transport_(transport), replica_(replica) {
  if (telemetry != nullptr) {
    obs::MetricsRegistry& metrics = telemetry->metrics();
    requests_counter_ = &metrics.counter("replica_endpoint.requests");
    coded_chunks_counter_ = &metrics.counter("replica_endpoint.coded_chunks");
    rejected_counter_ = &metrics.counter("replica_endpoint.rejected");
    cancels_purged_counter_ = &metrics.counter("replica_endpoint.cancels_purged");
    cancels_ignored_counter_ = &metrics.counter("replica_endpoint.cancels_ignored");
    subscribes_counter_ = &metrics.counter("replica_endpoint.subscribes");
    replies_counter_ = &metrics.counter("replica_endpoint.replies");
    queue_length_gauge_ = &metrics.gauge("replica_endpoint.queue_length");
    if (telemetry->spans_enabled()) span_sink_ = telemetry;
  }
  endpoint_ = factory(
      [this](EndpointId from, const net::Payload& message) { on_receive(from, message); });
}

ReplicaEndpoint::ReplicaEndpoint(net::Transport& transport, ThreadedReplica& replica,
                                 HostId host, obs::Telemetry* telemetry)
    : ReplicaEndpoint(
          transport, replica,
          [&transport, host](net::ReceiveFn fn) {
            return transport.create_endpoint(host, std::move(fn));
          },
          telemetry) {}

ReplicaEndpoint::~ReplicaEndpoint() { shutdown(); }

void ReplicaEndpoint::shutdown() {
  if (!shut_down_.exchange(true)) transport_.destroy_endpoint(endpoint_);
}

void ReplicaEndpoint::on_receive(EndpointId from, const net::Payload& message) {
  if (const auto* request = message.get_if<proto::Request>()) {
    if (requests_counter_ != nullptr) {
      requests_counter_->add();
      // Chunk demand: coded k-of-n dispatches, vs whole-job requests.
      if (request->code_k > 0) coded_chunks_counter_->add();
    }
    const obs::SpanContext request_ctx = message.span();
    // The reply callback runs on the replica's worker thread; both
    // transports accept sends from any thread.
    const bool accepted = replica_.submit(
        *request,
        [this, from, request_ctx](const proto::Reply& reply) {
          net::Payload payload = net::Payload::make(reply, proto::kReplyBytes);
          if (request_ctx.valid()) {
            payload.set_span({.trace_id = request_ctx.trace_id,
                              .parent_span_id = request_ctx.parent_span_id,
                              .leg = obs::SpanKind::kReplyLeg,
                              .replica = reply.replica});
            if (span_sink_ != nullptr) {
              // Zero-duration hand-off marker (see span_sink_ comment).
              const TimePoint at = span_sink_->wall_now();
              span_sink_->record_span({.trace_id = request_ctx.trace_id,
                                       .span_id = span_sink_->next_span_id(),
                                       .parent_span_id = request_ctx.parent_span_id,
                                       .kind = obs::SpanKind::kReplyLeg,
                                       .client = obs::trace_client(request_ctx.trace_id),
                                       .request = reply.request,
                                       .replica = reply.replica,
                                       .start = at,
                                       .end = at});
            }
          }
          if (replies_counter_ != nullptr) replies_counter_->add();
          transport_.unicast(endpoint_, from, std::move(payload));
        },
        request_ctx);
    if (requests_counter_ != nullptr) {
      if (!accepted) rejected_counter_->add();
      queue_length_gauge_->set(static_cast<double>(replica_.queue_length()));
    }
    return;
  }
  if (const auto* cancel = message.get_if<proto::Cancel>()) {
    // Best-effort: purges the queued copy if service has not started;
    // otherwise the reply is already on its way and the client drops it.
    const bool purged = replica_.cancel(cancel->request, cancel->client);
    if (requests_counter_ != nullptr) {
      (purged ? cancels_purged_counter_ : cancels_ignored_counter_)->add();
      queue_length_gauge_->set(static_cast<double>(replica_.queue_length()));
    }
    return;
  }
  if (message.get_if<proto::Subscribe>() != nullptr) {
    if (subscribes_counter_ != nullptr) subscribes_counter_->add();
    transport_.unicast(endpoint_, from,
                       net::Payload::make(proto::Announce{replica_.id(), endpoint_},
                                          proto::kAnnounceBytes));
  }
}

}  // namespace aqua::runtime
