// Server-gateway glue: a transport endpoint in front of a ThreadedReplica.
//
// The endpoint receives proto::Request messages, submits them to the
// replica's worker thread, and unicasts the proto::Reply (with
// piggybacked performance data) back to the sender once serviced. A
// proto::Subscribe is answered with proto::Announce{replica, endpoint},
// the discovery handshake a remote client gateway uses to learn which
// replica lives behind an address it was pointed at. A crashed replica
// simply stops answering — over UDP the client's retransmit budget then
// reports the host dead, the same liveness edge the sim Lan raises.
#pragma once

#include <atomic>
#include <functional>

#include "net/transport.h"
#include "runtime/threaded_replica.h"

namespace aqua::obs {
class Gauge;
}  // namespace aqua::obs

namespace aqua::runtime {

class ReplicaEndpoint {
 public:
  /// Bind the endpoint through `factory` — the hook that lets a process
  /// bind a fixed UDP port (UdpTransport::create_endpoint_on) instead of
  /// the Transport-interface default. The factory receives the receive
  /// callback and must return the endpoint it created on `transport`.
  using EndpointFactory = std::function<EndpointId(net::ReceiveFn)>;

  /// `transport` and `replica` must outlive the endpoint. `telemetry`
  /// (non-owning, may be null, must outlive the endpoint) mirrors the
  /// server-side message flow into replica_endpoint.* metrics: request /
  /// coded-chunk / subscribe intake, cancel fate (purged vs ignored —
  /// the §cancel-on-first-reply waste signal), submissions rejected by a
  /// crashed replica, and a queue-length gauge sampled on every message.
  ReplicaEndpoint(net::Transport& transport, ThreadedReplica& replica,
                  const EndpointFactory& factory, obs::Telemetry* telemetry = nullptr);

  /// Convenience: bind via transport.create_endpoint on `host`.
  ReplicaEndpoint(net::Transport& transport, ThreadedReplica& replica, HostId host,
                  obs::Telemetry* telemetry = nullptr);

  ~ReplicaEndpoint();

  ReplicaEndpoint(const ReplicaEndpoint&) = delete;
  ReplicaEndpoint& operator=(const ReplicaEndpoint&) = delete;

  /// Stop intake: destroy the transport endpoint, joining its delivery
  /// threads — no on_receive (hence no replica submit) after this. A
  /// reply still in flight on the replica's worker degrades to a counted
  /// transport drop. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] ThreadedReplica& replica() { return replica_; }

 private:
  void on_receive(EndpointId from, const net::Payload& message);

  net::Transport& transport_;
  ThreadedReplica& replica_;
  EndpointId endpoint_{};
  std::atomic<bool> shut_down_{false};

  /// Null unless telemetry is attached (one-branch discipline).
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* coded_chunks_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* cancels_purged_counter_ = nullptr;
  obs::Counter* cancels_ignored_counter_ = nullptr;
  obs::Counter* subscribes_counter_ = nullptr;
  obs::Counter* replies_counter_ = nullptr;
  obs::Gauge* queue_length_gauge_ = nullptr;
  /// Non-null when telemetry is attached AND spans are enabled: the
  /// endpoint then records a zero-duration kReplyLeg marker at
  /// reply-send time. The replica process can only attest the hand-off
  /// to the transport, not wire arrival; the marker still (a) separates
  /// "serviced but reply never sent" from wire loss and (b) anchors the
  /// return leg for fleet stitching (obs/fleet.h).
  obs::Telemetry* span_sink_ = nullptr;
};

}  // namespace aqua::runtime
