#include "runtime/threaded_replica.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/telemetry.h"

namespace aqua::runtime {

ThreadedReplica::ThreadedReplica(ReplicaId id, stats::SamplerPtr service_time, Rng rng,
                                 obs::Telemetry* telemetry)
    : id_(id), service_time_(std::move(service_time)), rng_(std::move(rng)) {
  AQUA_REQUIRE(service_time_ != nullptr, "replica needs a service-time sampler");
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    requests_counter_ = &metrics.counter("threaded_replica.requests");
    replies_counter_ = &metrics.counter("threaded_replica.replies");
    service_time_histogram_ = &metrics.histogram("threaded_replica.service_time_us");
    queuing_delay_histogram_ = &metrics.histogram("threaded_replica.queuing_delay_us");
    if (telemetry->spans_enabled()) span_sink_ = telemetry;
  }
  // The worker starts only after the metric pointers are resolved, so it
  // never races their initialisation.
  thread_ = std::thread([this] { worker(); });
}

ThreadedReplica::~ThreadedReplica() {
  crash();
  if (thread_.joinable()) thread_.join();
}

bool ThreadedReplica::submit(const proto::Request& request, ReplyFn on_reply,
                             obs::SpanContext span) {
  AQUA_REQUIRE(on_reply != nullptr, "reply callback must be callable");
  if (!alive_.load()) return false;
  const bool pushed =
      queue_.push(Job{request, std::move(on_reply), std::chrono::steady_clock::now(), span});
  if (pushed && requests_counter_ != nullptr) requests_counter_->add();
  return pushed;
}

std::size_t ThreadedReplica::queue_length() const { return queue_.size(); }

bool ThreadedReplica::cancel(RequestId request, ClientId client) {
  // remove_if only reaches items still inside the queue; a job the worker
  // already popped is in service and keeps its reply. That makes the
  // cancel/service-start race safe by construction: whichever side wins
  // the queue lock decides, and both outcomes are legal protocol states.
  const std::size_t removed = queue_.remove_if([&](const Job& job) {
    return job.request.id == request && job.request.client == client;
  });
  if (removed == 0) return false;
  purged_.fetch_add(removed);
  return true;
}

void ThreadedReplica::crash() {
  alive_.store(false);
  queue_.close_and_drain();
}

void ThreadedReplica::worker() {
  while (auto job = queue_.pop()) {
    const auto dequeued_at = std::chrono::steady_clock::now();
    Duration service = service_time_->sample(rng_);
    // Chunk-requests of an MDS-coded job carry 1/code_k of the whole
    // demand. Scale after the draw so RNG consumption matches uncoded
    // runs (the same discipline as ServiceModel::sample_chunk).
    if (job->request.code_k > 1) {
      service = std::max(Duration{1}, service / static_cast<std::int64_t>(job->request.code_k));
    }
    std::this_thread::sleep_for(service);
    if (!alive_.load()) return;  // crashed mid-service: never reply

    proto::Reply reply;
    reply.request = job->request.id;
    reply.replica = id_;
    reply.method = job->request.method;
    reply.result = job->request.argument;
    reply.chunk = job->request.chunk;
    reply.code_id = job->request.code_id;
    reply.perf.service_time = std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now() - dequeued_at);
    reply.perf.queuing_delay =
        std::chrono::duration_cast<Duration>(dequeued_at - job->enqueued_at);
    reply.perf.queue_length = static_cast<std::int64_t>(queue_.size());
    reply.perf.sample_seq = serviced_.fetch_add(1) + 1;
    if (replies_counter_ != nullptr) {
      replies_counter_->add();
      service_time_histogram_->record(reply.perf.service_time);
      queuing_delay_histogram_->record(reply.perf.queuing_delay);
    }
    if (span_sink_ != nullptr && job->span.valid()) {
      // Map onto the hub's wall-clock axis by anchoring at "now" and
      // walking back through the measured durations, so queue and
      // service spans line up exactly with the perf triple.
      const TimePoint finish = span_sink_->wall_now();
      const TimePoint dequeue = finish - reply.perf.service_time;
      const TimePoint enqueue = dequeue - reply.perf.queuing_delay;
      const ClientId client = obs::trace_client(job->span.trace_id);
      const RequestId request_id = obs::trace_request(job->span.trace_id);
      const std::uint64_t queue_span = span_sink_->next_span_id();
      const std::uint64_t service_span = span_sink_->next_span_id();
      span_sink_->record_span({.trace_id = job->span.trace_id,
                               .span_id = queue_span,
                               .parent_span_id = job->span.parent_span_id,
                               .kind = obs::SpanKind::kQueueWait,
                               .client = client,
                               .request = request_id,
                               .replica = id_,
                               .start = enqueue,
                               .end = dequeue});
      span_sink_->record_span({.trace_id = job->span.trace_id,
                               .span_id = service_span,
                               .parent_span_id = queue_span,
                               .kind = obs::SpanKind::kService,
                               .client = client,
                               .request = request_id,
                               .replica = id_,
                               .start = dequeue,
                               .end = finish});
    }
    job->on_reply(reply);
  }
}

}  // namespace aqua::runtime
