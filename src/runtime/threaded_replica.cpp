#include "runtime/threaded_replica.h"

#include "common/assert.h"
#include "obs/telemetry.h"

namespace aqua::runtime {

ThreadedReplica::ThreadedReplica(ReplicaId id, stats::SamplerPtr service_time, Rng rng,
                                 obs::Telemetry* telemetry)
    : id_(id), service_time_(std::move(service_time)), rng_(std::move(rng)) {
  AQUA_REQUIRE(service_time_ != nullptr, "replica needs a service-time sampler");
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    requests_counter_ = &metrics.counter("threaded_replica.requests");
    replies_counter_ = &metrics.counter("threaded_replica.replies");
    service_time_histogram_ = &metrics.histogram("threaded_replica.service_time_us");
    queuing_delay_histogram_ = &metrics.histogram("threaded_replica.queuing_delay_us");
  }
  // The worker starts only after the metric pointers are resolved, so it
  // never races their initialisation.
  thread_ = std::thread([this] { worker(); });
}

ThreadedReplica::~ThreadedReplica() {
  crash();
  if (thread_.joinable()) thread_.join();
}

bool ThreadedReplica::submit(const proto::Request& request, ReplyFn on_reply) {
  AQUA_REQUIRE(on_reply != nullptr, "reply callback must be callable");
  if (!alive_.load()) return false;
  const bool pushed =
      queue_.push(Job{request, std::move(on_reply), std::chrono::steady_clock::now()});
  if (pushed && requests_counter_ != nullptr) requests_counter_->add();
  return pushed;
}

std::size_t ThreadedReplica::queue_length() const { return queue_.size(); }

void ThreadedReplica::crash() {
  alive_.store(false);
  queue_.close_and_drain();
}

void ThreadedReplica::worker() {
  while (auto job = queue_.pop()) {
    const auto dequeued_at = std::chrono::steady_clock::now();
    const Duration service = service_time_->sample(rng_);
    std::this_thread::sleep_for(service);
    if (!alive_.load()) return;  // crashed mid-service: never reply

    proto::Reply reply;
    reply.request = job->request.id;
    reply.replica = id_;
    reply.method = job->request.method;
    reply.result = job->request.argument;
    reply.perf.service_time = std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now() - dequeued_at);
    reply.perf.queuing_delay =
        std::chrono::duration_cast<Duration>(dequeued_at - job->enqueued_at);
    reply.perf.queue_length = static_cast<std::int64_t>(queue_.size());
    serviced_.fetch_add(1);
    if (replies_counter_ != nullptr) {
      replies_counter_->add();
      service_time_histogram_->record(reply.perf.service_time);
      queuing_delay_histogram_->record(reply.perf.queuing_delay);
    }
    job->on_reply(reply);
  }
}

}  // namespace aqua::runtime
