#include "core/qos_config.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"

namespace aqua::core {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("qos config line " + std::to_string(line) + ": " + what);
}

double parse_number(const std::string& value, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) fail(line, "trailing characters after number '" + value + "'");
    return parsed;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + value + "'");
  }
}

}  // namespace

std::vector<QosFileEntry> parse_qos_config(std::istream& in) {
  std::vector<QosFileEntry> entries;
  bool have_deadline = false;
  bool have_probability = false;
  std::string raw;
  std::size_t line_no = 0;

  const auto finish_entry = [&](std::size_t line) {
    if (entries.empty()) return;
    if (!have_deadline) fail(line, "service '" + entries.back().service + "' has no deadline_ms");
    if (!have_probability) {
      fail(line, "service '" + entries.back().service + "' has no min_probability");
    }
    entries.back().qos.validate();
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string text = raw;
    if (const auto hash = text.find('#'); hash != std::string::npos) text.resize(hash);
    text = trim(text);
    if (text.empty()) continue;

    const auto eq = text.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value', got '" + text + "'");
    const std::string key = trim(text.substr(0, eq));
    const std::string value = trim(text.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");

    if (key == "service") {
      finish_entry(line_no);
      entries.push_back(QosFileEntry{value, kDefaultMethod, QosSpec{}});
      have_deadline = false;
      have_probability = false;
      continue;
    }
    if (entries.empty()) fail(line_no, "'" + key + "' before any 'service = ...' line");
    QosFileEntry& entry = entries.back();
    if (key == "deadline_ms") {
      const double ms = parse_number(value, line_no);
      if (ms <= 0) fail(line_no, "deadline_ms must be positive");
      entry.qos.deadline = Duration{static_cast<std::int64_t>(ms * 1000.0)};
      have_deadline = true;
    } else if (key == "min_probability") {
      const double p = parse_number(value, line_no);
      if (p < 0.0 || p > 1.0) fail(line_no, "min_probability must be in [0, 1]");
      entry.qos.min_probability = p;
      have_probability = true;
    } else if (key == "method") {
      entry.method = value;
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  finish_entry(line_no);
  if (entries.empty()) {
    throw std::invalid_argument("qos config: no 'service = ...' entries found");
  }
  return entries;
}

std::vector<QosFileEntry> parse_qos_config(const std::string& text) {
  std::istringstream in(text);
  return parse_qos_config(in);
}

const QosFileEntry& find_service(const std::vector<QosFileEntry>& entries,
                                 const std::string& service) {
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const QosFileEntry& e) { return e.service == service; });
  AQUA_REQUIRE(it != entries.end(), "no QoS entry for service '" + service + "'");
  return *it;
}

}  // namespace aqua::core
