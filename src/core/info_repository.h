// Gateway information repository (§5.2).
//
// One repository lives inside each timing fault handler, caching only the
// information relevant to that handler's service: the replica list and,
// per replica, the service-time and queuing-delay sliding windows (size
// l), the most recent two-way gateway-to-gateway delay, and the current
// queue length. The repository is deliberately local to the handler — the
// paper rejects a global information service to avoid a single point of
// failure, remote-call overhead and concurrency control.
//
// The multi-interface extension (§8) is supported by keying windows by
// method name; single-interface deployments just use kDefaultMethod.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/qos.h"
#include "core/replica_stats.h"
#include "stats/sliding_window.h"

namespace aqua::obs {
class Counter;
class Telemetry;
}  // namespace aqua::obs

namespace aqua::core {

struct RepositoryConfig {
  /// l: sliding-window length. "its value is chosen so that it includes a
  /// reasonable number of recent requests but eliminates obsolete
  /// measurements" (§5.2). The paper's experiments use 5.
  std::size_t window_size = 5;

  /// Window length for gateway-to-gateway delays (§5.3.1's suggested
  /// extension for LANs whose traffic does fluctuate); 0 defaults to
  /// window_size. The most recent value is always tracked regardless.
  std::size_t gateway_window_size = 0;
};

/// One performance measurement, as extracted from a reply or a pushed
/// PerfUpdate.
struct PerfSample {
  Duration service_time{};
  Duration queuing_delay{};
  std::int64_t queue_length = 0;
};

class InfoRepository {
 public:
  explicit InfoRepository(RepositoryConfig config = {});

  /// Track a replica (idempotent). New replicas start with empty windows.
  void add_replica(ReplicaId replica);

  /// Drop a replica and its history (membership change: "those clients
  /// ... remove the entry for the failed replicas from their local
  /// information repositories", §5.4).
  void remove_replica(ReplicaId replica);

  [[nodiscard]] bool contains(ReplicaId replica) const;
  [[nodiscard]] std::size_t replica_count() const;
  [[nodiscard]] std::vector<ReplicaId> replicas() const;

  /// Record t_s, t_q and the queue length from a reply or PerfUpdate.
  /// Unknown replicas are added implicitly (a push may beat the view).
  void record_perf(ReplicaId replica, const PerfSample& sample, TimePoint now,
                   const std::string& method = kDefaultMethod);

  /// Record a freshly measured two-way gateway-to-gateway delay
  /// (t_d = t4 - t1 - t_q - t_s).
  void record_gateway_delay(ReplicaId replica, Duration delay, TimePoint now);

  /// Snapshot one replica for the model. Throws if untracked.
  [[nodiscard]] ReplicaObservation observe(ReplicaId replica,
                                           const std::string& method = kDefaultMethod) const;

  /// Snapshot every tracked replica, in replica-id order.
  [[nodiscard]] std::vector<ReplicaObservation> observe_all(
      const std::string& method = kDefaultMethod) const;

  /// True until the first perf sample for any replica arrives; the
  /// handler selects ALL replicas on a cold repository (§5.4.1).
  [[nodiscard]] bool cold(const std::string& method = kDefaultMethod) const;

  /// Current generation stamp for (replica, method): the value observe()
  /// would place in ReplicaObservation::generation. 0 for untracked
  /// replicas. Stamps are drawn from one repository-global monotone
  /// counter, so a stamp is never reused — not even after remove_replica
  /// followed by re-add — and equal stamps imply identical model inputs.
  [[nodiscard]] std::uint64_t generation(ReplicaId replica,
                                         const std::string& method = kDefaultMethod) const;

  [[nodiscard]] std::size_t window_size() const { return config_.window_size; }

  /// Count harvest traffic into `telemetry` (repository.perf_samples,
  /// repository.gateway_delays, repository.replicas_added / _removed)
  /// from now on. Null detaches. Counters are shared across handlers
  /// attached to one Telemetry, so they aggregate gateway-wide.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  struct MethodHistory {
    stats::SlidingWindow<Duration> service;
    stats::SlidingWindow<Duration> queuing;
    /// Bumped on every push (which also covers evictions).
    std::uint64_t generation = 0;
    explicit MethodHistory(std::size_t l) : service(l), queuing(l) {}
  };

  struct Record {
    std::map<std::string, MethodHistory> methods;
    Duration gateway_delay{};
    bool gateway_delay_known = false;
    stats::SlidingWindow<Duration> gateway_window;
    std::int64_t queue_length = 0;
    TimePoint last_update{};
    /// Bumped on changes that affect every method's model: gateway-delay
    /// measurements and queue-length changes.
    std::uint64_t shared_generation = 0;
    explicit Record(std::size_t gateway_l) : gateway_window(gateway_l) {}
  };

  Record& record_for(ReplicaId replica);

  RepositoryConfig config_;
  std::map<ReplicaId, Record> records_;
  std::uint64_t generation_counter_ = 0;

  /// Null unless telemetry is attached (one-branch discipline).
  obs::Counter* perf_samples_counter_ = nullptr;
  obs::Counter* gateway_delays_counter_ = nullptr;
  obs::Counter* replicas_added_counter_ = nullptr;
  obs::Counter* replicas_removed_counter_ = nullptr;
};

}  // namespace aqua::core
