// Gateway information repository (§5.2).
//
// One repository lives inside each timing fault handler, caching only the
// information relevant to that handler's service: the replica list and,
// per replica, the service-time and queuing-delay sliding windows (size
// l), the most recent two-way gateway-to-gateway delay, and the current
// queue length. The repository is deliberately local to the handler — the
// paper rejects a global information service to avoid a single point of
// failure, remote-call overhead and concurrency control.
//
// The multi-interface extension (§8) is supported by keying windows by
// method name; single-interface deployments just use kDefaultMethod.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/qos.h"
#include "core/replica_stats.h"
#include "stats/sliding_window.h"

namespace aqua::obs {
class Counter;
class Gauge;
class Telemetry;
}  // namespace aqua::obs

namespace aqua::core {

struct RepositoryConfig {
  /// l: sliding-window length. "its value is chosen so that it includes a
  /// reasonable number of recent requests but eliminates obsolete
  /// measurements" (§5.2). The paper's experiments use 5.
  std::size_t window_size = 5;

  /// Window length for gateway-to-gateway delays (§5.3.1's suggested
  /// extension for LANs whose traffic does fluctuate); 0 defaults to
  /// window_size. The most recent value is always tracked regardless.
  std::size_t gateway_window_size = 0;

  /// Smoothing factor for the queue-length / trend / service-rate EWMAs
  /// backing the load-compensated score. Must be in (0, 1].
  double ewma_alpha = 0.3;

  /// When set, a sample whose sample_seq is not newer than the last one
  /// applied for the replica is DROPPED instead of applied — protects the
  /// repository from retransmitted/reordered UDP replies overwriting a
  /// fresher queue_length. Off by default: the deterministic sim relies
  /// on applying messages in arrival order for bit-identical figures, so
  /// only the threaded/UDP runtime turns this on. Stale arrivals are
  /// counted in repository.stale_samples either way.
  bool reject_stale_samples = false;
};

/// One performance measurement, as extracted from a reply or a pushed
/// PerfUpdate.
struct PerfSample {
  Duration service_time{};
  Duration queuing_delay{};
  std::int64_t queue_length = 0;
  /// Producer-side publication counter (proto::PerfData::sample_seq);
  /// zero means the producer does not sequence and the sample is always
  /// treated as fresh.
  std::uint64_t sample_seq = 0;
};

class InfoRepository {
 public:
  explicit InfoRepository(RepositoryConfig config = {});

  /// Track a replica (idempotent). New replicas start with empty windows.
  void add_replica(ReplicaId replica);

  /// Drop a replica and its history (membership change: "those clients
  /// ... remove the entry for the failed replicas from their local
  /// information repositories", §5.4).
  void remove_replica(ReplicaId replica);

  [[nodiscard]] bool contains(ReplicaId replica) const;
  [[nodiscard]] std::size_t replica_count() const;
  [[nodiscard]] std::vector<ReplicaId> replicas() const;

  /// Record t_s, t_q and the queue length from a reply or PerfUpdate.
  /// Unknown replicas are added implicitly (a push may beat the view).
  void record_perf(ReplicaId replica, const PerfSample& sample, TimePoint now,
                   const std::string& method = kDefaultMethod);

  /// Record a freshly measured two-way gateway-to-gateway delay
  /// (t_d = t4 - t1 - t_q - t_s). `sample_seq` is the sequence of the
  /// reply the delay was derived from (0 = unsequenced); it is guarded
  /// independently of record_perf's, since one reply feeds both.
  void record_gateway_delay(ReplicaId replica, Duration delay, TimePoint now,
                            std::uint64_t sample_seq = 0);

  /// Charge one in-flight request of our own against the replica: called
  /// at dispatch time, cleared by the next accepted perf sample. Unknown
  /// replicas are ignored (no implicit add — a dispatch is not evidence
  /// of membership). Never advances any generation stamp.
  void note_dispatch(ReplicaId replica);

  /// Snapshot one replica for the model. Throws if untracked. Pass `now`
  /// to have ReplicaObservation::silence computed; the TimePoint{}
  /// default leaves it zero (callers without a clock).
  [[nodiscard]] ReplicaObservation observe(ReplicaId replica,
                                           const std::string& method = kDefaultMethod,
                                           TimePoint now = TimePoint{}) const;

  /// Snapshot every tracked replica, in replica-id order.
  [[nodiscard]] std::vector<ReplicaObservation> observe_all(
      const std::string& method = kDefaultMethod, TimePoint now = TimePoint{}) const;

  /// True until the first perf sample for any replica arrives; the
  /// handler selects ALL replicas on a cold repository (§5.4.1).
  [[nodiscard]] bool cold(const std::string& method = kDefaultMethod) const;

  /// Current generation stamp for (replica, method): the value observe()
  /// would place in ReplicaObservation::generation. 0 for untracked
  /// replicas. Stamps are drawn from one repository-global monotone
  /// counter, so a stamp is never reused — not even after remove_replica
  /// followed by re-add — and equal stamps imply identical model inputs.
  [[nodiscard]] std::uint64_t generation(ReplicaId replica,
                                         const std::string& method = kDefaultMethod) const;

  [[nodiscard]] std::size_t window_size() const { return config_.window_size; }

  /// Count harvest traffic into `telemetry` (repository.perf_samples,
  /// repository.gateway_delays, repository.stale_samples,
  /// repository.replicas_added / _removed) from now on, and export the
  /// per-replica load-pressure gauges (repository.<id>.queue_ewma /
  /// .queue_trend / .own_inflight). Null detaches. Counters are shared
  /// across handlers attached to one Telemetry, so they aggregate
  /// gateway-wide; the gauges too, so with several handlers on one
  /// Telemetry a gauge shows the most recent writer's view.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  struct MethodHistory {
    stats::SlidingWindow<Duration> service;
    stats::SlidingWindow<Duration> queuing;
    /// Bumped on every push (which also covers evictions).
    std::uint64_t generation = 0;
    explicit MethodHistory(std::size_t l) : service(l), queuing(l) {}
  };

  struct Record {
    std::map<std::string, MethodHistory> methods;
    Duration gateway_delay{};
    bool gateway_delay_known = false;
    stats::SlidingWindow<Duration> gateway_window;
    std::int64_t queue_length = 0;
    TimePoint last_update{};
    /// Bumped on changes that affect every method's model: gateway-delay
    /// measurements and queue-length changes.
    std::uint64_t shared_generation = 0;
    /// Load EWMAs (see ReplicaObservation). Seeded by the first sample.
    double queue_ewma = 0.0;
    double queue_trend = 0.0;
    double service_ewma_us = 0.0;
    bool ewma_seeded = false;
    /// Own dispatches since the last accepted perf sample.
    std::uint64_t own_inflight = 0;
    /// Highest sample_seq applied per channel. record_perf and
    /// record_gateway_delay are guarded separately because one reply
    /// legitimately feeds both with the same sequence number.
    std::uint64_t last_perf_seq = 0;
    std::uint64_t last_gateway_seq = 0;
    /// Per-replica load-pressure gauges, resolved lazily on first record
    /// after telemetry attaches (null otherwise, one-branch discipline).
    obs::Gauge* queue_ewma_gauge = nullptr;
    obs::Gauge* queue_trend_gauge = nullptr;
    obs::Gauge* own_inflight_gauge = nullptr;
    explicit Record(std::size_t gateway_l) : gateway_window(gateway_l) {}
  };

  Record& record_for(ReplicaId replica);
  void resolve_load_gauges(ReplicaId replica, Record& record);

  RepositoryConfig config_;
  std::map<ReplicaId, Record> records_;
  std::uint64_t generation_counter_ = 0;

  /// Null unless telemetry is attached (one-branch discipline).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* perf_samples_counter_ = nullptr;
  obs::Counter* gateway_delays_counter_ = nullptr;
  obs::Counter* stale_samples_counter_ = nullptr;
  obs::Counter* replicas_added_counter_ = nullptr;
  obs::Counter* replicas_removed_counter_ = nullptr;
};

}  // namespace aqua::core
