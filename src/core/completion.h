// Completion predicates for the reply path.
//
// The paper's Algorithm 1 hardwires "first reply wins": the handler
// delivers reply #1 and discards the rest. Generalizing the decision of
// *when a request is done* into a CompletionSpec unlocks two families the
// ROADMAP names:
//
//   k-of-n chunks — a divisible job is split into k chunks and MDS-coded
//   into n chunk-requests; ANY k distinct chunk-replies reconstruct the
//   result (Duffy & Shneer, PAPERS.md). We take the rateless view: the
//   chunk index space is unbounded, every freshly assigned index is
//   useful, so a redispatch after a crash simply hands out new indices
//   and the k-distinct invariant still holds.
//
//   quorum — k distinct *replicas* must answer (whole requests, no
//   coding); the read-quorum building block for future consistency work.
//
// The default spec (first-of-n) is the paper's semantics exactly, and the
// collector below is pure bookkeeping — no randomness, no scheduled
// events — so the default dispatch path stays bit-identical to the paper
// policy (fig4/fig5 golden tests pin this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace aqua::core {

enum class CompletionKind : std::uint8_t {
  /// The paper's semantics: any one reply completes the request.
  kFirstOfN = 0,
  /// MDS-coded divisible job: k distinct chunk indices complete it.
  kKOfN = 1,
  /// k distinct replicas must answer (whole requests, no chunking).
  kQuorum = 2,
};

/// When is a request complete? Carried inside DispatchConfig; the
/// default value reproduces the paper's first-reply-wins behaviour.
struct CompletionSpec {
  CompletionKind kind = CompletionKind::kFirstOfN;
  /// Distinct chunks (kKOfN) or distinct replicas (kQuorum) required.
  /// Ignored for kFirstOfN. Clamped to the dispatched set size when a
  /// plan is built, so an over-ambitious k can never stall a request
  /// that received every possible reply.
  std::size_t k = 1;

  [[nodiscard]] static CompletionSpec first_of_n() { return {}; }
  [[nodiscard]] static CompletionSpec k_of_n(std::size_t k) {
    return {CompletionKind::kKOfN, k};
  }
  [[nodiscard]] static CompletionSpec quorum(std::size_t k) {
    return {CompletionKind::kQuorum, k};
  }

  /// True for the paper's first-reply semantics — the identity branch of
  /// every dispatch path keys off this.
  [[nodiscard]] bool is_default() const { return kind == CompletionKind::kFirstOfN; }

  /// Replies needed to complete (>= 1).
  [[nodiscard]] std::size_t required() const {
    if (kind == CompletionKind::kFirstOfN) return 1;
    return k > 0 ? k : 1;
  }

  [[nodiscard]] bool operator==(const CompletionSpec&) const = default;
};

/// Tracks the replies of one pending request and decides completion.
///
/// record() returns true exactly once — on the reply that satisfies the
/// spec (the k-th *distinct* chunk or replica, or the first reply for the
/// default spec) — and false forever after; duplicate and stale replies
/// are counted, never double-counted. The collector is deliberately not
/// internally locked: the simulated handler runs single-threaded, and the
/// threaded client records under its per-request state mutex (the same
/// lock that guards first-reply delivery today).
class ReplyCollector {
 public:
  /// Replace the default first-of-n spec. Must be called before the
  /// first record(); `code_id` tags the dispatch generation — replies
  /// carrying a different id are counted stale and never complete.
  /// Arming twice is ignored (a redispatch keeps the original predicate
  /// and its progress).
  void arm(CompletionSpec spec, std::uint64_t code_id);

  /// Account one reply. Returns true iff this reply completes the
  /// request (the transition to complete happens exactly once).
  bool record(ReplicaId replica, std::uint32_t chunk, std::uint64_t code_id);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] const CompletionSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t code_id() const { return code_id_; }
  [[nodiscard]] std::size_t required() const { return spec_.required(); }

  /// Distinct useful replies so far (chunk indices for kKOfN, replicas
  /// for kQuorum, answered-or-not for kFirstOfN).
  [[nodiscard]] std::size_t distinct() const;

  /// Replies that repeated an already-counted chunk/replica or arrived
  /// after completion.
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  /// Replies whose code id did not match the armed dispatch generation.
  [[nodiscard]] std::uint64_t stale() const { return stale_; }

 private:
  CompletionSpec spec_{};
  std::uint64_t code_id_ = 0;
  bool armed_ = false;
  bool complete_ = false;
  std::uint64_t duplicates_ = 0;
  std::uint64_t stale_ = 0;
  std::vector<std::uint32_t> chunks_;    // distinct chunk indices seen
  std::vector<ReplicaId> replicas_;      // distinct repliers seen
};

}  // namespace aqua::core
