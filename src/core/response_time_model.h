// Online response-time model (§5.3.1).
//
// R_i = S_i + W_i + T_i: the pmf of a replica's response time is the
// discrete convolution of the empirical pmfs of its service time and
// queuing delay, shifted by the most recently measured two-way
// gateway-to-gateway delay (modelled as deterministic, as the paper does
// for a LAN whose traffic "does not frequently fluctuate").
//
// F_Ri(t) — the probability the replica responds within t — is the value
// Algorithm 1 consumes.
//
// A model may share a ModelCache (core/model_cache.h): observations that
// carry a repository generation stamp are then served from the cache when
// their windows have not changed since the last computation, turning the
// steady-state hot path into a cdf lookup. Cached and uncached results
// are identical — the cache only memoizes, never approximates.
#pragma once

#include <memory>

#include "common/time.h"
#include "core/replica_stats.h"
#include "stats/empirical_pmf.h"

namespace aqua::core {

class ModelCache;

struct ModelConfig {
  /// Bin width for pmf compaction before convolution; zero keeps the
  /// exact relative-frequency atoms (the paper's formulation). Binning
  /// bounds convolution cost for large windows at a small accuracy cost
  /// (ablation: bench/ablation_model_binning).
  Duration bin_width = Duration::zero();

  /// Extension (not in the paper's model, which stores the live queue
  /// length but only uses the windowed W pmf): when true, shift the
  /// response pmf by queue_length x mean(S) to account for backlog that
  /// built up after the recorded window. The mean is taken over the raw
  /// (unbinned) service samples.
  bool queue_backlog_shift = false;

  /// §5.3.1's suggested extension for LANs with fluctuating traffic:
  /// treat T_i as a random variable with the empirical pmf of the
  /// gateway-delay window instead of a constant at its latest value.
  bool windowed_gateway_delay = false;

  /// Cache entries computed under one config never serve another.
  friend bool operator==(const ModelConfig&, const ModelConfig&) = default;
};

class ResponseTimeModel {
 public:
  explicit ResponseTimeModel(ModelConfig config = {});

  /// Model sharing `cache` with other models/selections; pass nullptr
  /// for the uncached behaviour.
  ResponseTimeModel(ModelConfig config, std::shared_ptr<ModelCache> cache);

  /// Pmf of R_i for the observation; the empty pmf when the replica has
  /// no recorded history.
  [[nodiscard]] stats::EmpiricalPmf response_pmf(const ReplicaObservation& obs) const;

  /// F_Ri(t) = P(R_i <= t). Zero when the replica has no history or the
  /// deadline is non-positive. With a cache attached this is a lookup
  /// plus one cdf evaluation in the steady state.
  [[nodiscard]] double probability_by(const ReplicaObservation& obs, Duration deadline) const;

  [[nodiscard]] const ModelConfig& config() const { return config_; }
  [[nodiscard]] const std::shared_ptr<ModelCache>& cache() const { return cache_; }

 private:
  /// The full pipeline: pmf construction, binning, convolution, shifts.
  [[nodiscard]] stats::EmpiricalPmf compute_pmf(const ReplicaObservation& obs) const;

  ModelConfig config_;
  std::shared_ptr<ModelCache> cache_;
};

}  // namespace aqua::core
