// Online response-time model (§5.3.1).
//
// R_i = S_i + W_i + T_i: the pmf of a replica's response time is the
// discrete convolution of the empirical pmfs of its service time and
// queuing delay, shifted by the most recently measured two-way
// gateway-to-gateway delay (modelled as deterministic, as the paper does
// for a LAN whose traffic "does not frequently fluctuate").
//
// F_Ri(t) — the probability the replica responds within t — is the value
// Algorithm 1 consumes.
#pragma once

#include "common/time.h"
#include "core/replica_stats.h"
#include "stats/empirical_pmf.h"

namespace aqua::core {

struct ModelConfig {
  /// Bin width for pmf compaction before convolution; zero keeps the
  /// exact relative-frequency atoms (the paper's formulation). Binning
  /// bounds convolution cost for large windows at a small accuracy cost
  /// (ablation: bench/ablation_model_binning).
  Duration bin_width = Duration::zero();

  /// Extension (not in the paper's model, which stores the live queue
  /// length but only uses the windowed W pmf): when true, shift the
  /// response pmf by queue_length x mean(S) to account for backlog that
  /// built up after the recorded window.
  bool queue_backlog_shift = false;

  /// §5.3.1's suggested extension for LANs with fluctuating traffic:
  /// treat T_i as a random variable with the empirical pmf of the
  /// gateway-delay window instead of a constant at its latest value.
  bool windowed_gateway_delay = false;
};

class ResponseTimeModel {
 public:
  explicit ResponseTimeModel(ModelConfig config = {});

  /// Pmf of R_i for the observation; the empty pmf when the replica has
  /// no recorded history.
  [[nodiscard]] stats::EmpiricalPmf response_pmf(const ReplicaObservation& obs) const;

  /// F_Ri(t) = P(R_i <= t). Zero when the replica has no history or the
  /// deadline is non-positive.
  [[nodiscard]] double probability_by(const ReplicaObservation& obs, Duration deadline) const;

  [[nodiscard]] const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
};

}  // namespace aqua::core
