#include "core/failure_tracker.h"

#include "common/assert.h"

namespace aqua::core {

TimingFailureTracker::TimingFailureTracker(FailureTrackerConfig config) : config_(config) {}

void TimingFailureTracker::record(bool timely) {
  ++total_;
  if (!timely) ++failures_;
  if (config_.window > 0) {
    recent_.push_back(timely);
    if (!timely) ++recent_failures_;
    if (recent_.size() > config_.window) {
      if (!recent_.front()) --recent_failures_;
      recent_.pop_front();
    }
  }
}

double TimingFailureTracker::timely_fraction() const {
  if (config_.window > 0) {
    if (recent_.empty()) return 1.0;
    return 1.0 - static_cast<double>(recent_failures_) / static_cast<double>(recent_.size());
  }
  if (total_ == 0) return 1.0;
  return 1.0 - static_cast<double>(failures_) / static_cast<double>(total_);
}

bool TimingFailureTracker::violates(double min_probability) const {
  AQUA_REQUIRE(min_probability >= 0.0 && min_probability <= 1.0,
               "probability must be in [0, 1]");
  const std::size_t horizon = config_.window > 0 ? recent_.size() : total_;
  if (horizon < config_.min_samples) return false;
  return timely_fraction() < min_probability;
}

void TimingFailureTracker::reset() {
  total_ = 0;
  failures_ = 0;
  recent_.clear();
  recent_failures_ = 0;
}

}  // namespace aqua::core
