#include "core/completion.h"

#include <algorithm>

namespace aqua::core {

void ReplyCollector::arm(CompletionSpec spec, std::uint64_t code_id) {
  if (armed_) return;
  spec_ = spec;
  code_id_ = code_id;
  armed_ = true;
}

std::size_t ReplyCollector::distinct() const {
  switch (spec_.kind) {
    case CompletionKind::kKOfN:
      return chunks_.size();
    case CompletionKind::kQuorum:
      return replicas_.size();
    case CompletionKind::kFirstOfN:
      break;
  }
  return complete_ ? 1 : 0;
}

bool ReplyCollector::record(ReplicaId replica, std::uint32_t chunk,
                            std::uint64_t code_id) {
  if (code_id != code_id_) {
    ++stale_;
    return false;
  }
  if (complete_) {
    ++duplicates_;
    return false;
  }
  switch (spec_.kind) {
    case CompletionKind::kFirstOfN:
      complete_ = true;
      return true;
    case CompletionKind::kKOfN:
      if (std::find(chunks_.begin(), chunks_.end(), chunk) != chunks_.end()) {
        ++duplicates_;
        return false;
      }
      chunks_.push_back(chunk);
      complete_ = chunks_.size() >= spec_.required();
      return complete_;
    case CompletionKind::kQuorum:
      if (std::find(replicas_.begin(), replicas_.end(), replica) !=
          replicas_.end()) {
        ++duplicates_;
        return false;
      }
      replicas_.push_back(replica);
      complete_ = replicas_.size() >= spec_.required();
      return complete_;
  }
  return false;
}

}  // namespace aqua::core
