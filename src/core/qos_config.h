// QoS specification files (§5.4).
//
// "A client may either negotiate its QoS requirements at runtime or
// specify them in a configuration file, which is read by the timing
// fault handler when it is loaded in the client gateway."
//
// Format: one `key = value` pair per line; '#' starts a comment; blank
// lines ignored. Keys:
//
//   service           = <name>            (required)
//   deadline_ms       = <positive number> (required)
//   min_probability   = <0..1>            (required)
//   method            = <interface name>  (optional, default "invoke")
//
// A file may hold several specifications, separated by `service = ...`
// lines (each service line starts a new spec).
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "core/qos.h"

namespace aqua::core {

struct QosFileEntry {
  std::string service;
  std::string method = kDefaultMethod;
  QosSpec qos;

  friend bool operator==(const QosFileEntry&, const QosFileEntry&) = default;
};

/// Parse a QoS configuration stream. Throws std::invalid_argument with a
/// line-numbered message on malformed input; the returned entries are
/// validated (positive deadline, probability in [0, 1]).
std::vector<QosFileEntry> parse_qos_config(std::istream& in);

/// Convenience: parse from a string.
std::vector<QosFileEntry> parse_qos_config(const std::string& text);

/// Find the entry for `service` (first match); throws if absent.
const QosFileEntry& find_service(const std::vector<QosFileEntry>& entries,
                                 const std::string& service);

}  // namespace aqua::core
