#include "core/policies.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.h"
#include "core/model_cache.h"
#include "obs/telemetry.h"
#include "stats/empirical_pmf.h"

namespace aqua::core {
namespace {

Duration fraction_of(Duration d, double fraction) {
  return Duration{static_cast<std::int64_t>(
      std::llround(static_cast<double>(count_us(d)) * fraction))};
}

/// Shared helper: cold-repository bootstrap — pick everything.
bool cold_start_all(std::span<const ReplicaObservation> observations, SelectionResult& result) {
  const bool cold = std::none_of(observations.begin(), observations.end(),
                                 [](const ReplicaObservation& o) { return o.has_data(); });
  if (!cold) return false;
  result.cold_start = true;
  for (const ReplicaObservation& obs : observations) result.selected.push_back(obs.id);
  return true;
}

class DynamicPolicy final : public SelectionPolicy {
 public:
  DynamicPolicy(SelectionConfig config, ModelConfig model, std::shared_ptr<ModelCache> cache)
      : selector_(config, ResponseTimeModel{model, std::move(cache)}) {}

  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration overhead_delta, Rng& rng) override {
    // The selector only draws from the rng for the power-of-two-choices
    // spread, i.e. never under the default (load-score-off) config.
    return selector_.select(observations, qos, overhead_delta, &rng);
  }

  std::string name() const override { return "dynamic"; }

 private:
  ReplicaSelector selector_;
};

class FastestMeanPolicy final : public SelectionPolicy {
 public:
  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration, Rng&) override {
    AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
    qos.validate();
    SelectionResult result;
    if (cold_start_all(observations, result)) return result;
    double best = std::numeric_limits<double>::infinity();
    ReplicaId best_id;
    for (const ReplicaObservation& obs : observations) {
      if (!obs.has_data()) continue;
      const double mean_us =
          stats::EmpiricalPmf::from_samples(obs.service_samples).mean_us() +
          stats::EmpiricalPmf::from_samples(obs.queuing_samples).mean_us() +
          static_cast<double>(count_us(obs.gateway_delay));
      if (mean_us < best) {
        best = mean_us;
        best_id = obs.id;
      }
    }
    result.selected.push_back(best_id);
    result.feasible = true;
    return result;
  }

  std::string name() const override { return "fastest-mean"; }
};

class BestProbabilityPolicy final : public SelectionPolicy {
 public:
  explicit BestProbabilityPolicy(ModelConfig model) : model_(model) {}

  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration overhead_delta, Rng&) override {
    AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
    qos.validate();
    SelectionResult result;
    if (cold_start_all(observations, result)) return result;
    Duration deadline = qos.deadline - overhead_delta;
    double best = -1.0;
    ReplicaId best_id;
    for (const ReplicaObservation& obs : observations) {
      if (!obs.has_data()) continue;
      const double p = model_.probability_by(obs, deadline);
      result.ranked.push_back({obs.id, p, true});
      if (p > best) {
        best = p;
        best_id = obs.id;
      }
    }
    result.selected.push_back(best_id);
    result.predicted_probability = best;
    result.feasible = best >= qos.min_probability;
    return result;
  }

  std::string name() const override { return "best-probability"; }

 private:
  ResponseTimeModel model_;
};

class RandomPolicy final : public SelectionPolicy {
 public:
  explicit RandomPolicy(std::size_t k) : k_(k) {}

  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration, Rng& rng) override {
    AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
    qos.validate();
    SelectionResult result;
    if (cold_start_all(observations, result)) return result;
    std::vector<std::size_t> indices(observations.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    std::shuffle(indices.begin(), indices.end(), rng);
    const std::size_t take = std::min(k_, indices.size());
    for (std::size_t i = 0; i < take; ++i) {
      result.selected.push_back(observations[indices[i]].id);
    }
    result.feasible = true;
    return result;
  }

  std::string name() const override { return "random-" + std::to_string(k_); }

 private:
  std::size_t k_;
};

class RoundRobinPolicy final : public SelectionPolicy {
 public:
  explicit RoundRobinPolicy(std::size_t k) : k_(k) {}

  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration, Rng&) override {
    AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
    qos.validate();
    SelectionResult result;
    if (cold_start_all(observations, result)) return result;
    const std::size_t n = observations.size();
    const std::size_t take = std::min(k_, n);
    for (std::size_t i = 0; i < take; ++i) {
      result.selected.push_back(observations[(cursor_ + i) % n].id);
    }
    cursor_ = (cursor_ + take) % n;
    result.feasible = true;
    return result;
  }

  std::string name() const override { return "round-robin-" + std::to_string(k_); }

 private:
  std::size_t k_;
  std::size_t cursor_ = 0;
};

class AllReplicasPolicy final : public SelectionPolicy {
 public:
  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration, Rng&) override {
    AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
    qos.validate();
    SelectionResult result;
    for (const ReplicaObservation& obs : observations) result.selected.push_back(obs.id);
    result.feasible = true;
    return result;
  }

  std::string name() const override { return "all-replicas"; }
};

class ObservedPolicy final : public SelectionPolicy {
 public:
  ObservedPolicy(PolicyPtr inner, obs::Telemetry* telemetry) : inner_(std::move(inner)) {
    AQUA_REQUIRE(inner_ != nullptr, "observed policy requires an inner policy");
    if (telemetry != nullptr) {
      auto& metrics = telemetry->metrics();
      calls_ = &metrics.counter("select.calls");
      cold_starts_ = &metrics.counter("select.cold_starts");
      infeasible_ = &metrics.counter("select.infeasible");
      suspect_skips_ = &metrics.counter("select.suspect_skips");
      redundancy_ = &metrics.histogram("select.redundancy");
    }
  }

  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration overhead_delta, Rng& rng) override {
    SelectionResult result = inner_->select(observations, qos, overhead_delta, rng);
    if (calls_ != nullptr) {
      calls_->add();
      if (result.cold_start) cold_starts_->add();
      if (!result.feasible && !result.cold_start) infeasible_->add();
      if (result.suspects > 0) suspect_skips_->add(result.suspects);
      redundancy_->record_value(static_cast<std::int64_t>(result.redundancy()));
    }
    return result;
  }

  std::string name() const override { return inner_->name(); }

 private:
  PolicyPtr inner_;
  obs::Counter* calls_ = nullptr;
  obs::Counter* cold_starts_ = nullptr;
  obs::Counter* infeasible_ = nullptr;
  obs::Counter* suspect_skips_ = nullptr;
  obs::Histogram* redundancy_ = nullptr;
};

class StaticKPolicy final : public SelectionPolicy {
 public:
  StaticKPolicy(std::size_t k, ModelConfig model, LoadScoreConfig load)
      : k_(k), model_(model), load_(load) {}

  SelectionResult select(std::span<const ReplicaObservation> observations, const QosSpec& qos,
                         Duration overhead_delta, Rng& rng) override {
    AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
    qos.validate();
    SelectionResult result;
    if (cold_start_all(observations, result)) return result;
    const Duration deadline = qos.deadline - overhead_delta;
    std::vector<const ReplicaObservation*> suspect_obs;
    const auto rank_one = [&](const ReplicaObservation& obs) {
      RankedReplica ranked{obs.id, obs.has_data() ? model_.probability_by(obs, deadline) : 0.0,
                           obs.has_data()};
      if (load_.enabled && obs.has_data()) {
        ranked.score = load_score(model_, obs, deadline, load_);
      }
      result.ranked.push_back(ranked);
    };
    for (const ReplicaObservation& obs : observations) {
      if (load_.enabled && obs.has_data() && load_suspect(obs, qos, load_)) {
        suspect_obs.push_back(&obs);
      } else {
        rank_one(obs);
      }
    }
    const bool any_ranked_data =
        std::any_of(result.ranked.begin(), result.ranked.end(),
                    [](const RankedReplica& r) { return r.has_data; });
    if (!any_ranked_data && !suspect_obs.empty()) {
      // Every data-bearing replica looked dead: rank them anyway rather
      // than dispatch only to dataless strangers.
      for (const ReplicaObservation* obs : suspect_obs) rank_one(*obs);
      suspect_obs.clear();
    }
    result.suspects = suspect_obs.size();
    if (load_.enabled) {
      std::sort(result.ranked.begin(), result.ranked.end(),
                [](const RankedReplica& a, const RankedReplica& b) {
                  if (a.score != b.score) return a.score > b.score;
                  if (a.probability != b.probability) return a.probability > b.probability;
                  return a.id < b.id;
                });
      two_choice_spread(result.ranked, observations, load_, rng);
    } else {
      std::sort(result.ranked.begin(), result.ranked.end(),
                [](const RankedReplica& a, const RankedReplica& b) {
                  if (a.probability != b.probability) return a.probability > b.probability;
                  return a.id < b.id;
                });
    }
    const std::size_t take = std::min(k_, result.ranked.size());
    double prod = 1.0;
    for (std::size_t i = 0; i < take; ++i) {
      result.selected.push_back(result.ranked[i].id);
      prod *= 1.0 - result.ranked[i].probability;
    }
    result.predicted_probability = 1.0 - prod;
    result.feasible = result.predicted_probability >= qos.min_probability;
    return result;
  }

  std::string name() const override {
    return (load_.enabled ? "static-load-" : "static-") + std::to_string(k_);
  }

 private:
  std::size_t k_;
  ResponseTimeModel model_;
  LoadScoreConfig load_;
};

}  // namespace

PolicyPtr make_dynamic_policy(SelectionConfig config, ModelConfig model,
                              std::shared_ptr<ModelCache> cache) {
  return std::make_unique<DynamicPolicy>(config, model, std::move(cache));
}

PolicyPtr make_fastest_mean_policy() { return std::make_unique<FastestMeanPolicy>(); }

PolicyPtr make_best_probability_policy(ModelConfig model) {
  return std::make_unique<BestProbabilityPolicy>(model);
}

PolicyPtr make_random_policy(std::size_t k) {
  AQUA_REQUIRE(k >= 1, "random policy needs k >= 1");
  return std::make_unique<RandomPolicy>(k);
}

PolicyPtr make_round_robin_policy(std::size_t k) {
  AQUA_REQUIRE(k >= 1, "round-robin policy needs k >= 1");
  return std::make_unique<RoundRobinPolicy>(k);
}

PolicyPtr make_all_replicas_policy() { return std::make_unique<AllReplicasPolicy>(); }

PolicyPtr make_static_k_policy(std::size_t k, ModelConfig model, LoadScoreConfig load) {
  AQUA_REQUIRE(k >= 1, "static policy needs k >= 1");
  return std::make_unique<StaticKPolicy>(k, model, load);
}

PolicyPtr make_observed_policy(PolicyPtr inner, obs::Telemetry* telemetry) {
  return std::make_unique<ObservedPolicy>(std::move(inner), telemetry);
}

DispatchPlan plan_dispatch(const DispatchConfig& config, const SelectionResult& selection,
                           std::span<const ReplicaObservation> observations, const QosSpec& qos,
                           const ResponseTimeModel& model) {
  DispatchPlan plan;
  plan.primary = selection.selected;
  if (plan.primary.size() <= 1 || selection.cold_start) return plan;

  if (config.adaptive_redundancy) {
    // Overload signal: mean piggybacked queue length across every LIVE
    // replica with history. When all queues are deep, each extra copy
    // of the request mostly adds queueing, not tail protection — trim
    // K to the cap, keeping the best-ranked members (selected order is
    // protected-first, then candidates by rank). Replicas silent past
    // the staleness bound are excluded: a crashed member's frozen (and
    // typically low) queue_length would otherwise bias the mean down
    // exactly when the survivors are drowning.
    Duration staleness_bound = config.overload_staleness_bound;
    if (staleness_bound == Duration::zero()) staleness_bound = qos.deadline * 4;
    double total = 0.0;
    std::size_t with_data = 0;
    for (const ReplicaObservation& obs : observations) {
      if (!obs.has_data()) continue;
      if (staleness_bound > Duration::zero() && obs.silence > staleness_bound) continue;
      total += static_cast<double>(obs.queue_length);
      ++with_data;
    }
    const std::size_t cap = std::max<std::size_t>(config.overload_redundancy_cap, 1);
    if (with_data > 0 && cap < plan.primary.size() &&
        total / static_cast<double>(with_data) >=
            static_cast<double>(config.overload_queue_threshold)) {
      plan.trimmed = plan.primary.size() - cap;
      plan.primary.resize(cap);
    }
  }

  if (!config.completion.is_default()) {
    // Clamp the predicate to what is actually going out: an
    // over-ambitious k must not leave a request waiting on replies that
    // can never exist. Coding only engages for k-of-n — a quorum reads
    // whole requests, so its copies stay uncoded.
    CompletionSpec spec = config.completion;
    spec.k = std::clamp<std::size_t>(spec.k, 1, plan.primary.size());
    plan.completion = spec;
    if (spec.kind == CompletionKind::kKOfN) {
      plan.coded = true;
      plan.code_k = static_cast<std::uint32_t>(spec.k);
    }
  }

  // A coded plan must keep at least k members in the primary wave —
  // hedging below k would guarantee the hedge timer fires every time.
  const std::size_t keep =
      plan.coded ? std::min<std::size_t>(plan.code_k, plan.primary.size()) : 1;
  if (config.mode == DispatchMode::kHedged && plan.primary.size() > keep) {
    plan.hedge.assign(plan.primary.begin() + static_cast<std::ptrdiff_t>(keep),
                      plan.primary.end());
    plan.primary.resize(keep);
    plan.hedged = true;
    // Hedge delay: the point on the primary's predicted response pmf
    // past which it probably missed — only then is the backup traffic
    // worth its cost. Clamped so a stale or degenerate pmf cannot
    // collapse the mode into plain multicast or hold the hedge past
    // usefulness.
    const Duration min_delay = fraction_of(qos.deadline, config.min_hedge_fraction);
    const Duration max_delay = fraction_of(qos.deadline, config.max_hedge_fraction);
    Duration delay = max_delay;
    const auto primary_obs =
        std::find_if(observations.begin(), observations.end(),
                     [&](const ReplicaObservation& o) { return o.id == plan.primary.front(); });
    if (primary_obs != observations.end() && primary_obs->has_data()) {
      const stats::EmpiricalPmf pmf = model.response_pmf(*primary_obs);
      if (!pmf.empty()) delay = pmf.quantile(config.hedge_quantile);
    }
    plan.hedge_delay = std::clamp(delay, min_delay, max_delay);
  }
  return plan;
}

}  // namespace aqua::core
