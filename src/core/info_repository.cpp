#include "core/info_repository.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "obs/telemetry.h"

namespace aqua::core {

InfoRepository::InfoRepository(RepositoryConfig config) : config_(config) {
  AQUA_REQUIRE(config_.window_size >= 1, "repository window size must be >= 1");
  AQUA_REQUIRE(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
               "repository ewma_alpha must be in (0, 1]");
  if (config_.gateway_window_size == 0) config_.gateway_window_size = config_.window_size;
}

InfoRepository::Record& InfoRepository::record_for(ReplicaId replica) {
  auto it = records_.find(replica);
  if (it == records_.end()) {
    it = records_.emplace(replica, Record{config_.gateway_window_size}).first;
    if (replicas_added_counter_ != nullptr) replicas_added_counter_->add();
  }
  return it->second;
}

void InfoRepository::add_replica(ReplicaId replica) { record_for(replica); }

void InfoRepository::remove_replica(ReplicaId replica) {
  if (records_.erase(replica) > 0 && replicas_removed_counter_ != nullptr) {
    replicas_removed_counter_->add();
  }
}

bool InfoRepository::contains(ReplicaId replica) const { return records_.contains(replica); }

std::size_t InfoRepository::replica_count() const { return records_.size(); }

std::vector<ReplicaId> InfoRepository::replicas() const {
  std::vector<ReplicaId> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(id);
  return out;
}

void InfoRepository::record_perf(ReplicaId replica, const PerfSample& sample, TimePoint now,
                                 const std::string& method) {
  AQUA_REQUIRE(sample.service_time >= Duration::zero(), "service time must be non-negative");
  AQUA_REQUIRE(sample.queuing_delay >= Duration::zero(), "queuing delay must be non-negative");
  AQUA_REQUIRE(sample.queue_length >= 0, "queue length must be non-negative");
  Record& record = record_for(replica);
  if (sample.sample_seq != 0 && record.last_perf_seq != 0 &&
      sample.sample_seq <= record.last_perf_seq) {
    // A retransmitted or reordered copy of a sample already applied; its
    // queue_length is older than what the record holds.
    if (stale_samples_counter_ != nullptr) stale_samples_counter_->add();
    if (config_.reject_stale_samples) return;
  }
  record.last_perf_seq = std::max(record.last_perf_seq, sample.sample_seq);
  auto [it, inserted] = record.methods.try_emplace(method, config_.window_size);
  it->second.service.push(sample.service_time);
  it->second.queuing.push(sample.queuing_delay);
  it->second.generation = ++generation_counter_;
  if (record.queue_length != sample.queue_length) {
    // Queue length feeds the backlog-shift model for EVERY method of this
    // replica, so it invalidates across methods; an unchanged length does
    // not (same model inputs, keep the cached pmfs alive).
    record.shared_generation = ++generation_counter_;
  }
  // Load EWMAs. These never touch a generation stamp: the response-time
  // model does not read them, so cached pmfs stay valid while they move.
  const double alpha = config_.ewma_alpha;
  const double qlen = static_cast<double>(sample.queue_length);
  const double service_us =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(sample.service_time).count());
  if (!record.ewma_seeded) {
    record.queue_ewma = qlen;
    record.service_ewma_us = service_us;
    record.queue_trend = 0.0;
    record.ewma_seeded = true;
  } else {
    const double delta = qlen - static_cast<double>(record.queue_length);
    record.queue_trend = alpha * delta + (1.0 - alpha) * record.queue_trend;
    record.queue_ewma = alpha * qlen + (1.0 - alpha) * record.queue_ewma;
    record.service_ewma_us = alpha * service_us + (1.0 - alpha) * record.service_ewma_us;
  }
  // A fresh sample reflects the replica's queue as of this reply; our
  // older in-flight charges are either inside that queue count now or
  // already serviced, so the compensation resets.
  record.own_inflight = 0;
  record.queue_length = sample.queue_length;
  record.last_update = now;
  if (perf_samples_counter_ != nullptr) perf_samples_counter_->add();
  if (telemetry_ != nullptr) {
    resolve_load_gauges(replica, record);
    record.queue_ewma_gauge->set(record.queue_ewma);
    record.queue_trend_gauge->set(record.queue_trend);
    record.own_inflight_gauge->set(0.0);
  }
}

void InfoRepository::record_gateway_delay(ReplicaId replica, Duration delay, TimePoint now,
                                          std::uint64_t sample_seq) {
  AQUA_REQUIRE(delay >= Duration::zero(), "gateway delay must be non-negative");
  Record& record = record_for(replica);
  if (sample_seq != 0 && record.last_gateway_seq != 0 && sample_seq <= record.last_gateway_seq) {
    if (stale_samples_counter_ != nullptr) stale_samples_counter_->add();
    if (config_.reject_stale_samples) return;
  }
  record.last_gateway_seq = std::max(record.last_gateway_seq, sample_seq);
  record.gateway_delay = delay;
  record.gateway_delay_known = true;
  record.gateway_window.push(delay);
  record.shared_generation = ++generation_counter_;
  record.last_update = now;
  if (gateway_delays_counter_ != nullptr) gateway_delays_counter_->add();
}

void InfoRepository::note_dispatch(ReplicaId replica) {
  auto it = records_.find(replica);
  if (it == records_.end()) return;
  Record& record = it->second;
  ++record.own_inflight;
  if (telemetry_ != nullptr) {
    resolve_load_gauges(replica, record);
    record.own_inflight_gauge->set(static_cast<double>(record.own_inflight));
  }
}

ReplicaObservation InfoRepository::observe(ReplicaId replica, const std::string& method,
                                           TimePoint now) const {
  auto it = records_.find(replica);
  AQUA_REQUIRE(it != records_.end(), "observe() of an untracked replica");
  const Record& record = it->second;
  ReplicaObservation obs;
  obs.id = replica;
  obs.method = method;
  obs.generation = record.shared_generation;
  if (auto mit = record.methods.find(method); mit != record.methods.end()) {
    obs.service_samples = mit->second.service.samples();
    obs.queuing_samples = mit->second.queuing.samples();
    obs.generation = std::max(obs.generation, mit->second.generation);
  }
  obs.gateway_delay = record.gateway_delay;
  obs.gateway_samples = record.gateway_window.samples();
  obs.queue_length = record.queue_length;
  obs.last_update = record.last_update;
  obs.queue_ewma = record.queue_ewma;
  obs.queue_trend = record.queue_trend;
  obs.service_ewma_us = record.service_ewma_us;
  obs.own_inflight = record.own_inflight;
  if (now != TimePoint{} && now > record.last_update) obs.silence = now - record.last_update;
  return obs;
}

std::uint64_t InfoRepository::generation(ReplicaId replica, const std::string& method) const {
  auto it = records_.find(replica);
  if (it == records_.end()) return 0;
  std::uint64_t generation = it->second.shared_generation;
  if (auto mit = it->second.methods.find(method); mit != it->second.methods.end()) {
    generation = std::max(generation, mit->second.generation);
  }
  return generation;
}

std::vector<ReplicaObservation> InfoRepository::observe_all(const std::string& method,
                                                            TimePoint now) const {
  std::vector<ReplicaObservation> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(observe(id, method, now));
  return out;
}

bool InfoRepository::cold(const std::string& method) const {
  for (const auto& [id, record] : records_) {
    auto mit = record.methods.find(method);
    if (mit != record.methods.end() && !mit->second.service.empty()) return false;
  }
  return true;
}

void InfoRepository::resolve_load_gauges(ReplicaId replica, Record& record) {
  if (record.queue_ewma_gauge != nullptr) return;
  auto& metrics = telemetry_->metrics();
  const std::string prefix = "repository." + std::to_string(replica.value());
  record.queue_ewma_gauge = &metrics.gauge(prefix + ".queue_ewma");
  record.queue_trend_gauge = &metrics.gauge(prefix + ".queue_trend");
  record.own_inflight_gauge = &metrics.gauge(prefix + ".own_inflight");
}

void InfoRepository::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  for (auto& [id, record] : records_) {
    record.queue_ewma_gauge = nullptr;
    record.queue_trend_gauge = nullptr;
    record.own_inflight_gauge = nullptr;
  }
  if (telemetry == nullptr) {
    perf_samples_counter_ = nullptr;
    gateway_delays_counter_ = nullptr;
    stale_samples_counter_ = nullptr;
    replicas_added_counter_ = nullptr;
    replicas_removed_counter_ = nullptr;
    return;
  }
  auto& metrics = telemetry->metrics();
  perf_samples_counter_ = &metrics.counter("repository.perf_samples");
  gateway_delays_counter_ = &metrics.counter("repository.gateway_delays");
  stale_samples_counter_ = &metrics.counter("repository.stale_samples");
  replicas_added_counter_ = &metrics.counter("repository.replicas_added");
  replicas_removed_counter_ = &metrics.counter("repository.replicas_removed");
}

}  // namespace aqua::core
