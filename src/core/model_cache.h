// Memoization of fully-convolved response-time pmfs for the selection
// hot path.
//
// Every dispatch re-derives F_Ri(t) for every replica from the raw
// sliding-window samples: EmpiricalPmf::from_samples plus an O(l^2)
// convolution (twice when the gateway-delay window is modelled). In the
// steady state — repeated selections with no window changes in between —
// that work is identical each time. The paper itself motivates keeping
// the algorithm's own overhead delta small (§5.3.3); this cache makes the
// common case a map lookup plus one cdf evaluation.
//
// Key and validity: entries are keyed by (replica, method) and stamped
// with the InfoRepository generation the pmf was computed from plus the
// ModelConfig that shaped it. The repository draws stamps from a single
// monotone counter and advances them on every window push/eviction,
// gateway-delay measurement and queue-length change, so an equal stamp
// proves the cached pmf was computed from identical model inputs —
// cached and uncached selection are byte-identical by construction.
// Entries for departed replicas are dropped via invalidate() when the
// membership view evicts them.
//
// Not thread-safe: like InfoRepository, one instance lives inside one
// handler (callers that share a handler across threads already hold the
// handler's lock around selection).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/ids.h"
#include "core/replica_stats.h"
#include "core/response_time_model.h"
#include "stats/empirical_pmf.h"

namespace aqua::obs {
class Counter;
class Telemetry;
}  // namespace aqua::obs

namespace aqua::core {

/// Cumulative effectiveness counters; the overhead model reads the
/// hit/miss split of one selection to charge delta honestly.
struct ModelCacheStats {
  /// Lookups served without convolving.
  std::uint64_t hits = 0;
  /// Lookups that had to compute (first sight or stale entry).
  std::uint64_t misses = 0;
  /// Subset of misses that replaced a stale entry.
  std::uint64_t invalidations = 0;
  /// Entries dropped by invalidate()/clear() (membership evictions).
  std::uint64_t evictions = 0;
};

class ModelCache {
 public:
  /// Cached pmf for the observation, or nullptr when absent, stale, or
  /// computed under a different ModelConfig. Counts a hit or a miss;
  /// every miss must be followed by store() for the same observation.
  [[nodiscard]] const stats::EmpiricalPmf* find(const ModelConfig& config,
                                                const ReplicaObservation& obs);

  /// Record the freshly computed pmf for the observation and return the
  /// stored copy.
  const stats::EmpiricalPmf& store(const ModelConfig& config, const ReplicaObservation& obs,
                                   stats::EmpiricalPmf pmf);

  /// Drop every entry of a replica (membership change, §5.4: crashed
  /// replicas leave the repository — and this cache — entirely).
  void invalidate(ReplicaId replica);

  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const ModelCacheStats& stats() const { return stats_; }

  /// Mirror the stats counters into `telemetry` (metric names
  /// model_cache.hits / .misses / .invalidations / .evictions) from now
  /// on. Null detaches; metric pointers are resolved once here, so the
  /// per-lookup cost is one branch plus a relaxed add.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  struct Entry {
    std::uint64_t generation = 0;
    ModelConfig config;
    stats::EmpiricalPmf pmf;
  };

  std::map<std::pair<ReplicaId, std::string>, Entry> entries_;
  ModelCacheStats stats_;

  /// Null unless telemetry is attached (one-branch discipline).
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace aqua::core
