// Selection policies: the paper's dynamic algorithm plus the baseline
// schemes it is motivated against (§1, §7).
//
// The related single-replica schemes (nearest replica, best historical
// mean, probing) "assign a single replica to each client and do not
// consider the case in which a replica may fail while servicing a
// request". These baselines let the benches quantify the gap: failure
// probability and replica cost under identical workloads.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/rng.h"
#include "core/completion.h"
#include "core/selection.h"

namespace aqua::obs {
class Telemetry;
}  // namespace aqua::obs

namespace aqua::core {

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Choose the replicas for one request. Stateless policies ignore
  /// `rng`; randomised ones (random-k) consume it.
  [[nodiscard]] virtual SelectionResult select(std::span<const ReplicaObservation> observations,
                                               const QosSpec& qos, Duration overhead_delta,
                                               Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using PolicyPtr = std::unique_ptr<SelectionPolicy>;

/// The paper's Algorithm 1 (with configuration). When `cache` is set, the
/// policy memoizes convolved response pmfs in it, re-convolving only
/// replicas whose repository windows changed since the last selection;
/// results are identical either way.
PolicyPtr make_dynamic_policy(SelectionConfig config = {}, ModelConfig model = {},
                              std::shared_ptr<ModelCache> cache = nullptr);

/// Single replica with the lowest estimated mean response time
/// (mean(S) + mean(W) + T) — the "best historical average" baseline [19].
PolicyPtr make_fastest_mean_policy();

/// Single replica with the highest F_Ri(t) but no redundancy — an
/// oracle-ish probabilistic baseline that still cannot survive a crash.
PolicyPtr make_best_probability_policy(ModelConfig model = {});

/// k replicas drawn uniformly at random without replacement.
PolicyPtr make_random_policy(std::size_t k);

/// k replicas in a fixed rotation (load-balancing baseline).
PolicyPtr make_round_robin_policy(std::size_t k);

/// Every available replica (maximum fault tolerance, zero scalability).
PolicyPtr make_all_replicas_policy();

/// The k replicas with the highest F_Ri(t) regardless of the client's
/// probability request (static redundancy baseline). With `load.enabled`
/// the k are picked by the load-compensated score instead (suspect
/// skipping and two-choice spreading included) — the herd-safe informed
/// placement the coded bench pits against blind random spreading.
PolicyPtr make_static_k_policy(std::size_t k, ModelConfig model = {}, LoadScoreConfig load = {});

/// How the gateway transmits a request to the selected set K.
///
/// The paper's Algorithm 1 is replicate-early: the whole K goes out at
/// t1. Poloczek & Ciucu show that flips from a latency win into overload
/// collapse as utilization rises; Sun/Koksal/Shroff place the optimum on
/// a load-dependent spectrum. The hedged mode is the replicate-late end:
/// only the best-ranked member at t1, the rest held back behind a hedge
/// timer that usually never fires.
enum class DispatchMode {
  kMulticast,
  kHedged,
};

/// Speculative-redundancy knobs layered over a SelectionPolicy. The
/// defaults reproduce the paper's behaviour exactly (full-K multicast,
/// no cancels, no trimming) — every figure harness relies on that.
struct DispatchConfig {
  DispatchMode mode = DispatchMode::kMulticast;

  /// Send proto::Cancel to every still-awaiting member of K when the
  /// first reply arrives, purging queued copies (work conservation).
  bool cancel_on_first_reply = false;

  /// Hedge delay = this quantile of the primary replica's predicted
  /// response pmf: the hedge fires only in the tail where the primary
  /// is unlikely to still answer in time.
  double hedge_quantile = 0.95;

  /// Clamp the hedge delay into [min, max] * deadline so a degenerate
  /// pmf can neither fire the hedge instantly (re-creating multicast)
  /// nor push it past the point where backups can still help.
  double min_hedge_fraction = 0.05;
  double max_hedge_fraction = 0.5;

  /// Utilization-adaptive redundancy: when the mean piggybacked queue
  /// length across known replicas reaches the threshold, trim K to the
  /// cap — redundancy is surplus exactly when every queue is deep.
  bool adaptive_redundancy = false;
  std::int64_t overload_queue_threshold = 4;
  std::size_t overload_redundancy_cap = 2;

  /// Live-replica filter for the overload mean: observations silent for
  /// longer than this (a crashed member still inside the §5.4 failure
  /// detection window, its stale low queue_length frozen in the
  /// repository) are excluded, so one dead replica cannot drag the
  /// signal below the threshold. Zero = auto (4 x the request deadline,
  /// mirroring the runtime's give-up factor); negative = include all
  /// (the pre-fix behaviour, kept for ablation). Only consulted when
  /// adaptive_redundancy is on, and only effective when the caller
  /// observed with a clock (otherwise silence is zero = always live).
  Duration overload_staleness_bound{};

  /// When is the request complete? The default (first-of-n) is the
  /// paper's first-reply-wins semantics. k_of_n(k) turns the request
  /// into a divisible job: K chunk-requests are MDS-coded so any k
  /// distinct chunk-replies reconstruct the result; quorum(k) demands
  /// k distinct repliers of the whole request.
  CompletionSpec completion{};

  [[nodiscard]] bool is_default() const {
    return mode == DispatchMode::kMulticast && !cancel_on_first_reply &&
           !adaptive_redundancy && completion.is_default();
  }
};

/// Transmission schedule for one request, derived from a SelectionResult.
struct DispatchPlan {
  /// Sent at t1.
  std::vector<ReplicaId> primary;
  /// Sent at t1 + hedge_delay unless the primary answered first.
  std::vector<ReplicaId> hedge;
  Duration hedge_delay{};
  /// True when the plan actually split K (hedged mode, warm repository).
  bool hedged = false;
  /// Members of K dropped by the adaptive-redundancy rule.
  std::size_t trimmed = 0;
  /// True when the request goes out as MDS-coded chunk-requests; each
  /// dispatched copy then carries a distinct chunk index and a
  /// chunk-sized (1/code_k) service demand.
  bool coded = false;
  /// Chunks required to reconstruct (k of the k-of-n predicate),
  /// clamped to the post-trim set size. Zero when not coded.
  std::uint32_t code_k = 0;
  /// The predicate the reply collector should be armed with — the
  /// config's spec with k clamped to what was actually dispatched.
  CompletionSpec completion{};
};

/// Split the selected set into the transmission schedule. With the
/// default config this is the identity plan (primary = K, no model
/// evaluation, no extra randomness), so the paper-policy path is
/// bit-identical. Cold-start selections are never hedged or trimmed:
/// bootstrap traffic must reach everyone.
[[nodiscard]] DispatchPlan plan_dispatch(const DispatchConfig& config,
                                         const SelectionResult& selection,
                                         std::span<const ReplicaObservation> observations,
                                         const QosSpec& qos, const ResponseTimeModel& model);

/// Transparent telemetry decorator: forwards every select() to `inner`
/// unchanged (same result, same rng draws, same name()) and mirrors the
/// outcome into `telemetry` — counters select.calls / select.cold_starts
/// / select.infeasible plus the select.redundancy histogram. With a null
/// telemetry the per-selection cost is one branch, so benches can
/// measure the disabled path against the bare policy.
PolicyPtr make_observed_policy(PolicyPtr inner, obs::Telemetry* telemetry);

}  // namespace aqua::core
