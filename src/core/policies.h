// Selection policies: the paper's dynamic algorithm plus the baseline
// schemes it is motivated against (§1, §7).
//
// The related single-replica schemes (nearest replica, best historical
// mean, probing) "assign a single replica to each client and do not
// consider the case in which a replica may fail while servicing a
// request". These baselines let the benches quantify the gap: failure
// probability and replica cost under identical workloads.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/rng.h"
#include "core/selection.h"

namespace aqua::obs {
class Telemetry;
}  // namespace aqua::obs

namespace aqua::core {

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Choose the replicas for one request. Stateless policies ignore
  /// `rng`; randomised ones (random-k) consume it.
  [[nodiscard]] virtual SelectionResult select(std::span<const ReplicaObservation> observations,
                                               const QosSpec& qos, Duration overhead_delta,
                                               Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using PolicyPtr = std::unique_ptr<SelectionPolicy>;

/// The paper's Algorithm 1 (with configuration). When `cache` is set, the
/// policy memoizes convolved response pmfs in it, re-convolving only
/// replicas whose repository windows changed since the last selection;
/// results are identical either way.
PolicyPtr make_dynamic_policy(SelectionConfig config = {}, ModelConfig model = {},
                              std::shared_ptr<ModelCache> cache = nullptr);

/// Single replica with the lowest estimated mean response time
/// (mean(S) + mean(W) + T) — the "best historical average" baseline [19].
PolicyPtr make_fastest_mean_policy();

/// Single replica with the highest F_Ri(t) but no redundancy — an
/// oracle-ish probabilistic baseline that still cannot survive a crash.
PolicyPtr make_best_probability_policy(ModelConfig model = {});

/// k replicas drawn uniformly at random without replacement.
PolicyPtr make_random_policy(std::size_t k);

/// k replicas in a fixed rotation (load-balancing baseline).
PolicyPtr make_round_robin_policy(std::size_t k);

/// Every available replica (maximum fault tolerance, zero scalability).
PolicyPtr make_all_replicas_policy();

/// The k replicas with the highest F_Ri(t) regardless of the client's
/// probability request (static redundancy baseline).
PolicyPtr make_static_k_policy(std::size_t k, ModelConfig model = {});

/// Transparent telemetry decorator: forwards every select() to `inner`
/// unchanged (same result, same rng draws, same name()) and mirrors the
/// outcome into `telemetry` — counters select.calls / select.cold_starts
/// / select.infeasible plus the select.redundancy histogram. With a null
/// telemetry the per-selection cost is one branch, so benches can
/// measure the disabled path against the bare policy.
PolicyPtr make_observed_policy(PolicyPtr inner, obs::Telemetry* telemetry);

}  // namespace aqua::core
