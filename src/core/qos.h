// Client quality-of-service specification.
//
// §4: "This specification includes the name of a service, the time by
// which the client wants to receive a response after it transmits its
// request to this service, and the minimum probability with which it
// wants this time constraint to be met."
#pragma once

#include <string>

#include "common/assert.h"
#include "common/time.h"

namespace aqua::core {

struct QosSpec {
  /// t: the client's response deadline, measured from request
  /// interception (t0) to first-reply delivery (t4).
  Duration deadline = msec(200);

  /// P_c(t): minimum probability with which the deadline must be met.
  /// 0 means the client tolerates any number of timing failures.
  double min_probability = 0.0;

  void validate() const {
    AQUA_REQUIRE(deadline > Duration::zero(), "QoS deadline must be positive");
    AQUA_REQUIRE(min_probability >= 0.0 && min_probability <= 1.0,
                 "QoS probability must be in [0, 1]");
  }

  friend bool operator==(const QosSpec&, const QosSpec&) = default;
};

/// The method interface name used by single-interface deployments.
inline const std::string kDefaultMethod = "invoke";

}  // namespace aqua::core
