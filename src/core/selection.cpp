#include "core/selection.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace aqua::core {

ReplicaSelector::ReplicaSelector(SelectionConfig config, ResponseTimeModel model)
    : config_(config), model_(std::move(model)) {}

SelectionResult ReplicaSelector::select(std::span<const ReplicaObservation> observations,
                                        const QosSpec& qos, Duration overhead_delta) const {
  AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
  qos.validate();
  {
    std::unordered_set<ReplicaId> seen;
    for (const ReplicaObservation& obs : observations) {
      AQUA_REQUIRE(seen.insert(obs.id).second, "duplicate replica in observations");
    }
  }

  SelectionResult result;

  // §5.3.3: compensate the algorithm's own overhead by selecting replicas
  // able to respond within t - delta.
  Duration effective_deadline = qos.deadline;
  if (config_.overhead_compensation && overhead_delta > Duration::zero()) {
    effective_deadline -= overhead_delta;
  }

  // Compute F_Ri(t - delta) for every replica with history.
  result.ranked.reserve(observations.size());
  std::vector<ReplicaId> dataless;
  for (const ReplicaObservation& obs : observations) {
    if (obs.has_data()) {
      result.ranked.push_back(
          RankedReplica{obs.id, model_.probability_by(obs, effective_deadline), true});
    } else {
      dataless.push_back(obs.id);
    }
  }

  // Cold start (§5.4.1): with no history at all, select every replica so
  // the performance updates can initialise the repository.
  if (result.ranked.empty()) {
    result.cold_start = true;
    for (const ReplicaObservation& obs : observations) result.selected.push_back(obs.id);
    return result;
  }

  // Line 3: sort in decreasing order of F_Ri; ties broken by id so that
  // selection is deterministic.
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RankedReplica& a, const RankedReplica& b) {
              if (a.probability != b.probability) return a.probability > b.probability;
              return a.id < b.id;
            });

  // Line 4 (generalised): protect the top-k replicas, clamped to n-1 so
  // the feasibility test below never runs over an empty candidate range.
  // Without the clamp, k >= n short-circuits the loop, prod stays 1.0 and
  // even a single PERFECT replica reports test_probability = 0 and falls
  // into the infeasible fallback. With it, the surplus protected members
  // are themselves evaluated against P_c: the test covers the worst-case
  // survivor set after min(k, n-1) member crashes, which is Algorithm 1's
  // intent (the excluded top members are the worst-case crash victims).
  const std::size_t protected_count =
      std::min(config_.crash_tolerance, result.ranked.size() - 1);
  result.protected_count = protected_count;

  // Lines 6-14: grow the candidate set X from the remaining replicas
  // until P_X(t) >= P_c(t).
  // Tolerance for the feasibility comparison: empirical F values are sums
  // of 1/l atoms, so an exact >= at a round P_c (e.g. 0.8 vs 8 x 0.1)
  // would fail on floating-point dust.
  constexpr double kFeasibilityTolerance = 1e-9;
  double prod = 1.0;
  std::size_t candidate_end = protected_count;  // X = ranked[protected_count, candidate_end)
  bool feasible = false;
  for (std::size_t i = protected_count; i < result.ranked.size(); ++i) {
    prod *= 1.0 - result.ranked[i].probability;
    candidate_end = i + 1;
    if (1.0 - prod >= qos.min_probability - kFeasibilityTolerance) {
      feasible = true;
      break;
    }
  }

  result.feasible = feasible;
  result.test_probability = result.ranked.empty() ? 0.0 : 1.0 - prod;

  if (feasible) {
    // Line 11: K = X u protected set.
    for (std::size_t i = 0; i < candidate_end; ++i) {
      result.selected.push_back(result.ranked[i].id);
    }
    if (config_.include_dataless) {
      for (ReplicaId id : dataless) result.selected.push_back(id);
    }
  } else if (config_.infeasible_fallback == InfeasibleFallback::kAllReplicas) {
    // Line 15: return the complete replica set M.
    for (const RankedReplica& r : result.ranked) result.selected.push_back(r.id);
    for (ReplicaId id : dataless) result.selected.push_back(id);
  } else {
    // kMinimalSet: the spec is unreachable; take what a P_c = 0 request
    // would get (protected members + one candidate) instead of loading
    // every replica.
    const std::size_t take = std::min(protected_count + 1, result.ranked.size());
    for (std::size_t i = 0; i < take; ++i) result.selected.push_back(result.ranked[i].id);
    if (config_.include_dataless) {
      for (ReplicaId id : dataless) result.selected.push_back(id);
    }
  }

  // P_K(t) over every selected replica with data.
  double all_prod = 1.0;
  std::size_t counted = candidate_end;
  if (!feasible) {
    counted = config_.infeasible_fallback == InfeasibleFallback::kAllReplicas
                  ? result.ranked.size()
                  : std::min(protected_count + 1, result.ranked.size());
  }
  for (std::size_t i = 0; i < counted; ++i) {
    all_prod *= 1.0 - result.ranked[i].probability;
  }
  result.predicted_probability = 1.0 - all_prod;
  return result;
}

}  // namespace aqua::core
