#include "core/selection.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.h"
#include "common/rng.h"

namespace aqua::core {

Duration load_penalty(const ReplicaObservation& obs, const LoadScoreConfig& load) {
  const double backlog = load.queue_weight * std::max(0.0, obs.queue_ewma) +
                         load.outstanding_weight * static_cast<double>(obs.own_inflight) +
                         load.trend_weight * std::max(0.0, obs.queue_trend);
  if (backlog <= 0.0 || obs.service_ewma_us <= 0.0) return Duration::zero();
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::micro>(backlog * obs.service_ewma_us));
}

bool load_suspect(const ReplicaObservation& obs, const QosSpec& qos,
                  const LoadScoreConfig& load) {
  if (!load.liveness_guess) return false;
  // Only our own unanswered traffic makes silence suspicious: a replica
  // we have not talked to recently is merely idle from our vantage.
  if (obs.own_inflight == 0) return false;
  if (obs.silence <= Duration::zero()) return false;
  return static_cast<double>(obs.silence.count()) >
         load.liveness_factor * static_cast<double>(qos.deadline.count());
}

double load_score(const ResponseTimeModel& model, const ReplicaObservation& obs,
                  Duration effective_deadline, const LoadScoreConfig& load) {
  return model.probability_by(obs, effective_deadline - load_penalty(obs, load));
}

void two_choice_spread(std::vector<RankedReplica>& ranked,
                       std::span<const ReplicaObservation> observations,
                       const LoadScoreConfig& load, Rng& rng) {
  if (ranked.size() < 2) return;
  std::unordered_map<ReplicaId, Duration> penalties;
  penalties.reserve(observations.size());
  for (const ReplicaObservation& obs : observations) {
    penalties.emplace(obs.id, load_penalty(obs, load));
  }
  const auto penalty_of = [&](const RankedReplica& r) {
    auto it = penalties.find(r.id);
    return it == penalties.end() ? Duration::zero() : it->second;
  };
  std::size_t band_begin = 0;
  while (band_begin < ranked.size()) {
    std::size_t band_end = band_begin + 1;
    while (band_end < ranked.size() &&
           ranked[band_begin].score - ranked[band_end].score <= load.p2c_epsilon) {
      ++band_end;
    }
    // Re-emit the band two-choices at a time: draw two distinct members,
    // keep the less loaded one next (ties keep the current, score-better
    // order). O(band^2) but bands are tiny in practice.
    std::vector<RankedReplica> pool(ranked.begin() + static_cast<std::ptrdiff_t>(band_begin),
                                    ranked.begin() + static_cast<std::ptrdiff_t>(band_end));
    std::size_t out = band_begin;
    while (pool.size() > 1) {
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
      auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 2));
      if (b >= a) ++b;  // distinct second choice
      std::size_t pick = penalty_of(pool[b]) < penalty_of(pool[a]) ? b : a;
      if (penalty_of(pool[a]) == penalty_of(pool[b])) pick = std::min(a, b);
      ranked[out++] = pool[pick];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ranked[out] = pool.front();
    band_begin = band_end;
  }
}

ReplicaSelector::ReplicaSelector(SelectionConfig config, ResponseTimeModel model)
    : config_(config), model_(std::move(model)) {}

SelectionResult ReplicaSelector::select(std::span<const ReplicaObservation> observations,
                                        const QosSpec& qos, Duration overhead_delta,
                                        Rng* rng) const {
  AQUA_REQUIRE(!observations.empty(), "selection requires at least one replica");
  qos.validate();
  {
    std::unordered_set<ReplicaId> seen;
    for (const ReplicaObservation& obs : observations) {
      AQUA_REQUIRE(seen.insert(obs.id).second, "duplicate replica in observations");
    }
  }

  SelectionResult result;

  // §5.3.3: compensate the algorithm's own overhead by selecting replicas
  // able to respond within t - delta.
  Duration effective_deadline = qos.deadline;
  if (config_.overhead_compensation && overhead_delta > Duration::zero()) {
    effective_deadline -= overhead_delta;
  }

  // Compute F_Ri(t - delta) for every replica with history. With the
  // load score on, the liveness guess skips suspect replicas before any
  // convolution runs, and each survivor also gets its compensated score.
  const LoadScoreConfig& load = config_.load;
  result.ranked.reserve(observations.size());
  std::vector<ReplicaId> dataless;
  std::vector<const ReplicaObservation*> suspect_obs;
  const auto rank_one = [&](const ReplicaObservation& obs) {
    RankedReplica ranked{obs.id, model_.probability_by(obs, effective_deadline), true};
    if (load.enabled) ranked.score = load_score(model_, obs, effective_deadline, load);
    result.ranked.push_back(ranked);
  };
  for (const ReplicaObservation& obs : observations) {
    if (!obs.has_data()) {
      dataless.push_back(obs.id);
    } else if (load.enabled && load_suspect(obs, qos, load)) {
      suspect_obs.push_back(&obs);
    } else {
      rank_one(obs);
    }
  }
  if (result.ranked.empty() && !suspect_obs.empty()) {
    // Every data-bearing replica looked dead: the guess must never starve
    // selection, so rank them all after all (and report no skips).
    for (const ReplicaObservation* obs : suspect_obs) rank_one(*obs);
    suspect_obs.clear();
  }
  result.suspects = suspect_obs.size();

  // Cold start (§5.4.1): with no history at all, select every replica so
  // the performance updates can initialise the repository.
  if (result.ranked.empty()) {
    result.cold_start = true;
    for (const ReplicaObservation& obs : observations) result.selected.push_back(obs.id);
    return result;
  }

  // Line 3: sort in decreasing order of F_Ri; ties broken by id so that
  // selection is deterministic. The load score, when enabled, takes
  // precedence: a timely-but-loaded replica ranks below an equally
  // timely idle one.
  if (load.enabled) {
    std::sort(result.ranked.begin(), result.ranked.end(),
              [](const RankedReplica& a, const RankedReplica& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.probability != b.probability) return a.probability > b.probability;
                return a.id < b.id;
              });
    if (rng != nullptr) two_choice_spread(result.ranked, observations, load, *rng);
  } else {
    std::sort(result.ranked.begin(), result.ranked.end(),
              [](const RankedReplica& a, const RankedReplica& b) {
                if (a.probability != b.probability) return a.probability > b.probability;
                return a.id < b.id;
              });
  }

  // Line 4 (generalised): protect the top-k replicas, clamped to n-1 so
  // the feasibility test below never runs over an empty candidate range.
  // Without the clamp, k >= n short-circuits the loop, prod stays 1.0 and
  // even a single PERFECT replica reports test_probability = 0 and falls
  // into the infeasible fallback. With it, the surplus protected members
  // are themselves evaluated against P_c: the test covers the worst-case
  // survivor set after min(k, n-1) member crashes, which is Algorithm 1's
  // intent (the excluded top members are the worst-case crash victims).
  const std::size_t protected_count =
      std::min(config_.crash_tolerance, result.ranked.size() - 1);
  result.protected_count = protected_count;

  // Lines 6-14: grow the candidate set X from the remaining replicas
  // until P_X(t) >= P_c(t).
  // Tolerance for the feasibility comparison: empirical F values are sums
  // of 1/l atoms, so an exact >= at a round P_c (e.g. 0.8 vs 8 x 0.1)
  // would fail on floating-point dust.
  constexpr double kFeasibilityTolerance = 1e-9;
  double prod = 1.0;
  std::size_t candidate_end = protected_count;  // X = ranked[protected_count, candidate_end)
  bool feasible = false;
  for (std::size_t i = protected_count; i < result.ranked.size(); ++i) {
    prod *= 1.0 - result.ranked[i].probability;
    candidate_end = i + 1;
    if (1.0 - prod >= qos.min_probability - kFeasibilityTolerance) {
      feasible = true;
      break;
    }
  }

  result.feasible = feasible;
  result.test_probability = result.ranked.empty() ? 0.0 : 1.0 - prod;

  if (feasible) {
    // Line 11: K = X u protected set.
    for (std::size_t i = 0; i < candidate_end; ++i) {
      result.selected.push_back(result.ranked[i].id);
    }
    if (config_.include_dataless) {
      for (ReplicaId id : dataless) result.selected.push_back(id);
    }
  } else if (config_.infeasible_fallback == InfeasibleFallback::kAllReplicas) {
    // Line 15: return the complete replica set M.
    for (const RankedReplica& r : result.ranked) result.selected.push_back(r.id);
    for (ReplicaId id : dataless) result.selected.push_back(id);
  } else {
    // kMinimalSet: the spec is unreachable; take what a P_c = 0 request
    // would get (protected members + one candidate) instead of loading
    // every replica.
    const std::size_t take = std::min(protected_count + 1, result.ranked.size());
    for (std::size_t i = 0; i < take; ++i) result.selected.push_back(result.ranked[i].id);
    if (config_.include_dataless) {
      for (ReplicaId id : dataless) result.selected.push_back(id);
    }
  }

  // P_K(t) over every selected replica with data.
  double all_prod = 1.0;
  std::size_t counted = candidate_end;
  if (!feasible) {
    counted = config_.infeasible_fallback == InfeasibleFallback::kAllReplicas
                  ? result.ranked.size()
                  : std::min(protected_count + 1, result.ranked.size());
  }
  for (std::size_t i = 0; i < counted; ++i) {
    all_prod *= 1.0 - result.ranked[i].probability;
  }
  result.predicted_probability = 1.0 - all_prod;
  return result;
}

}  // namespace aqua::core
