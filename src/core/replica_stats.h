// Snapshot of one replica's recorded performance history.
//
// This is the read-model the scheduler consumes: the contents of the
// gateway information repository for one replica at selection time
// (§5.2): the two sliding windows, the most recent two-way
// gateway-to-gateway delay, and the current queue length.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace aqua::core {

struct ReplicaObservation {
  ReplicaId id;

  /// Interface method this snapshot was taken for (multi-interface
  /// extension, §8). Part of the model-cache key: each (replica, method)
  /// pair has its own windows and therefore its own response pmf.
  std::string method;

  /// Repository generation stamp: advances whenever anything feeding the
  /// response-time model for this (replica, method) changes — a window
  /// push/eviction, a gateway-delay measurement, or a queue-length
  /// change. 0 marks a hand-built observation that no cache may serve.
  std::uint64_t generation = 0;

  /// Service times (t_s) of the most recent l requests, oldest first.
  std::vector<Duration> service_samples;

  /// Queuing delays (t_q) of the most recent l requests, oldest first.
  std::vector<Duration> queuing_samples;

  /// Most recently measured two-way gateway-to-gateway delay (T_i).
  Duration gateway_delay{};

  /// Recent T_i measurements, oldest first (§5.3.1's suggested extension:
  /// "it would be simple to extend our approach to record the value of
  /// the gateway-to-gateway delay over a sliding window"). Used only when
  /// ModelConfig::windowed_gateway_delay is set.
  std::vector<Duration> gateway_samples;

  /// Replica queue length from the latest performance update.
  std::int64_t queue_length = 0;

  /// When the repository last recorded anything for this replica.
  TimePoint last_update{};

  // Load-awareness extensions (herd-safe selection). None of these feed
  // the response-time model, so they do NOT advance `generation`: cached
  // pmfs stay valid while they move.

  /// EWMA over the piggybacked queue_length samples — smoother than the
  /// raw latest length, which is one queue snapshot behind reality.
  double queue_ewma = 0.0;

  /// EWMA of sample-to-sample queue-length deltas: positive while the
  /// queue is building, negative while it drains.
  double queue_trend = 0.0;

  /// EWMA of the service time in microseconds — the per-replica service
  /// RATE estimate (rate ~ 1 / service_ewma_us), used to convert backlog
  /// counts into a time penalty.
  double service_ewma_us = 0.0;

  /// This gateway's own requests dispatched to the replica since its last
  /// accepted perf sample. The repository cannot see them in any window
  /// yet, so selection charges them explicitly (client-side concurrency
  /// compensation).
  std::uint64_t own_inflight = 0;

  /// now - last_update as of observe(..., now); zero when observed
  /// without a clock. The "time without response" half of the cheap
  /// liveness guess.
  Duration silence{};

  /// A replica is usable by the model once both windows have content and
  /// a gateway delay has been measured.
  [[nodiscard]] bool has_data() const {
    return !service_samples.empty() && !queuing_samples.empty();
  }
};

}  // namespace aqua::core
