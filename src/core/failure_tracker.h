// Timing-failure accounting (§5.4.2).
//
// "The handler maintains a counter that keeps track of the number of
// times its client has failed to receive a timely response ... If the
// frequency of timely responses from the service does not meet the
// minimum probability the client has requested in its QoS specification,
// the handler notifies the client by issuing a callback."
#pragma once

#include <cstddef>
#include <deque>

#include "common/time.h"

namespace aqua::core {

struct FailureTrackerConfig {
  /// Outcomes required before a QoS violation can be reported; avoids
  /// spurious callbacks off one early miss.
  std::size_t min_samples = 10;

  /// 0: cumulative frequency over the whole session (the paper's
  /// counter). >0: frequency over the most recent `window` outcomes,
  /// which recovers after transients.
  std::size_t window = 0;
};

class TimingFailureTracker {
 public:
  explicit TimingFailureTracker(FailureTrackerConfig config = {});

  /// Record the outcome of one request (true = response met the deadline).
  void record(bool timely);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t failures() const { return failures_; }

  /// Fraction of timely responses over the configured horizon; 1.0 before
  /// any outcome is recorded.
  [[nodiscard]] double timely_fraction() const;

  /// True when enough outcomes exist and the timely fraction has dropped
  /// below `min_probability` — i.e. the handler should issue the QoS
  /// callback.
  [[nodiscard]] bool violates(double min_probability) const;

  void reset();

 private:
  FailureTrackerConfig config_;
  std::size_t total_ = 0;
  std::size_t failures_ = 0;
  std::deque<bool> recent_;       // only used when config_.window > 0
  std::size_t recent_failures_ = 0;
};

}  // namespace aqua::core
