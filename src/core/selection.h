// Model-based dynamic replica selection (§5.3.2, Algorithm 1).
//
// Sort replicas by decreasing F_Ri(t); always protect the top replica m0;
// greedily grow a candidate set X from the remainder until
// P_X(t) = 1 - prod(1 - F_Ri(t)) >= P_c(t); the final set is K = X u {m0}.
// Because the feasibility test excludes m0 — the member with the HIGHEST
// success probability — Equation 3 shows K still meets the client's
// probability if any single member crashes. If no X satisfies the bound,
// the complete replica set M is returned (Algorithm 1, line 15).
//
// Generalisation beyond the paper: crash_tolerance k protects the top k
// replicas and runs the feasibility test over the rest, tolerating k
// simultaneous member crashes (the paper's algorithm is k = 1; §5.3.2
// sketches exactly this extension).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/qos.h"
#include "core/replica_stats.h"
#include "core/response_time_model.h"

namespace aqua::core {

/// What to select when no candidate set satisfies P_X(t) >= P_c(t).
enum class InfeasibleFallback {
  /// Algorithm 1 line 15: "return the set comprising all the replicas".
  /// Maximises the chance for this request, but under overload selecting
  /// everything amplifies the very queueing that made the bound
  /// unreachable (see bench/scalability_clients).
  kAllReplicas,
  /// Extension: select only the protected members plus the best
  /// candidate (the sets Algorithm 1 would pick for P_c = 0), keeping
  /// the load bounded when the spec is unreachable anyway.
  kMinimalSet,
};

struct SelectionConfig {
  /// k: number of simultaneous member crashes the selected set must
  /// survive while still meeting the QoS. 1 reproduces Algorithm 1;
  /// 0 disables the protection trick (plain greedy; ablation baseline).
  /// Effectively clamped to n-1 for an n-replica ranking so the
  /// feasibility test always evaluates at least one replica: the test
  /// then covers the worst-case survivor set after min(k, n-1) crashes
  /// rather than declaring every small group infeasible outright.
  std::size_t crash_tolerance = 1;

  /// Behaviour when the requested probability is unreachable.
  InfeasibleFallback infeasible_fallback = InfeasibleFallback::kAllReplicas;

  /// §5.3.3: select with F_Ri(t - delta) instead of F_Ri(t), where delta
  /// is the measured overhead of the algorithm itself.
  bool overhead_compensation = true;

  /// Append replicas that have no recorded history yet (e.g. fresh group
  /// members) to the selected set so their windows can bootstrap. They do
  /// not participate in the probability test.
  bool include_dataless = true;
};

/// Per-replica diagnostic emitted with each selection.
struct RankedReplica {
  ReplicaId id;
  /// F_Ri(t - delta); 0 for dataless replicas.
  double probability = 0.0;
  bool has_data = false;

  friend bool operator==(const RankedReplica&, const RankedReplica&) = default;
};

struct SelectionResult {
  /// K: replicas the request is multicast to. Protected members first,
  /// then the candidate set in rank order, then bootstrapped dataless
  /// members.
  std::vector<ReplicaId> selected;

  /// P_K(t): predicted probability over every selected replica with data.
  double predicted_probability = 0.0;

  /// P_X(t): the probability used in the feasibility test (excludes the
  /// protected members).
  double test_probability = 0.0;

  /// True if the greedy loop satisfied P_X(t) >= P_c(t); false means the
  /// whole replica set M was returned.
  bool feasible = false;

  /// True when the repository had no history at all, so every replica was
  /// selected to bootstrap measurements (§5.4.1).
  bool cold_start = false;

  /// Number of top-ranked replicas held out of the feasibility test by
  /// the crash-tolerance rule (the generalised m0; 0 on cold start).
  std::size_t protected_count = 0;

  /// Replicas sorted by decreasing F_Ri(t - delta) (diagnostics).
  std::vector<RankedReplica> ranked;

  [[nodiscard]] std::size_t redundancy() const { return selected.size(); }

  /// Exact equality, doubles included — the model-cache equivalence
  /// property (cached and uncached selection agree bit-for-bit) asserts
  /// with this.
  friend bool operator==(const SelectionResult&, const SelectionResult&) = default;
};

class ReplicaSelector {
 public:
  explicit ReplicaSelector(SelectionConfig config = {}, ResponseTimeModel model = ResponseTimeModel{});

  /// Run Algorithm 1. `overhead_delta` is the most recent measurement of
  /// the algorithm's own cost (ignored unless overhead_compensation).
  /// Observations must be non-empty and have distinct replica ids.
  [[nodiscard]] SelectionResult select(std::span<const ReplicaObservation> observations,
                                       const QosSpec& qos,
                                       Duration overhead_delta = Duration::zero()) const;

  [[nodiscard]] const SelectionConfig& config() const { return config_; }
  [[nodiscard]] const ResponseTimeModel& model() const { return model_; }

 private:
  SelectionConfig config_;
  ResponseTimeModel model_;
};

/// Most recent measured value of the selection overhead delta (§5.3.3:
/// "we measure this overhead, delta, each time the selection algorithm is
/// executed, and use the most recently measured value").
class OverheadEstimator {
 public:
  explicit OverheadEstimator(Duration initial = Duration::zero()) : current_(initial) {}

  void record(Duration measured) {
    if (measured >= Duration::zero()) current_ = measured;
  }

  [[nodiscard]] Duration current() const { return current_; }

 private:
  Duration current_;
};

}  // namespace aqua::core
