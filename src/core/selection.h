// Model-based dynamic replica selection (§5.3.2, Algorithm 1).
//
// Sort replicas by decreasing F_Ri(t); always protect the top replica m0;
// greedily grow a candidate set X from the remainder until
// P_X(t) = 1 - prod(1 - F_Ri(t)) >= P_c(t); the final set is K = X u {m0}.
// Because the feasibility test excludes m0 — the member with the HIGHEST
// success probability — Equation 3 shows K still meets the client's
// probability if any single member crashes. If no X satisfies the bound,
// the complete replica set M is returned (Algorithm 1, line 15).
//
// Generalisation beyond the paper: crash_tolerance k protects the top k
// replicas and runs the feasibility test over the rest, tolerating k
// simultaneous member crashes (the paper's algorithm is k = 1; §5.3.2
// sketches exactly this extension).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/qos.h"
#include "core/replica_stats.h"
#include "core/response_time_model.h"

namespace aqua {
class Rng;
}  // namespace aqua

namespace aqua::core {

/// What to select when no candidate set satisfies P_X(t) >= P_c(t).
enum class InfeasibleFallback {
  /// Algorithm 1 line 15: "return the set comprising all the replicas".
  /// Maximises the chance for this request, but under overload selecting
  /// everything amplifies the very queueing that made the bound
  /// unreachable (see bench/scalability_clients).
  kAllReplicas,
  /// Extension: select only the protected members plus the best
  /// candidate (the sets Algorithm 1 would pick for P_c = 0), keeping
  /// the load bounded when the spec is unreachable anyway.
  kMinimalSet,
};

/// Herd-safe load compensation (Tars-style). The paper's pure P(t)
/// ranking makes every gateway pick the same "best" replicas, building
/// the very queues the model has not seen yet; this score charges each
/// replica's predicted backlog against its deadline before ranking.
/// Disabled by default: the default config stays bit-identical to the
/// paper policy (score fields are left at 0 and no rng is drawn).
struct LoadScoreConfig {
  bool enabled = false;

  /// Backlog charge per unit of smoothed queue length (queue_ewma). The
  /// queue is the herd's footprint — every gateway's dispatches land in
  /// it — so it is weighted above the purely-local terms; 2.0 is what
  /// flips the informed-coded inversion in bench/coded_vs_replicated.
  double queue_weight = 2.0;

  /// Backlog charge per own in-flight request (client-side concurrency
  /// compensation: our dispatches since the replica's last perf sample
  /// are invisible to every window, so they are charged explicitly).
  double outstanding_weight = 1.0;

  /// Backlog charge per unit of positive queue growth trend (a building
  /// queue is worse than its current length says).
  double trend_weight = 1.0;

  /// Two replicas whose scores differ by at most this much are "near
  /// equal": power-of-two-choices spreads them instead of letting the id
  /// tiebreak herd every gateway onto the lowest id.
  double p2c_epsilon = 0.02;

  /// Scylla-style cheap liveness guess: skip a replica before running
  /// the convolution when we have in-flight requests to it and it has
  /// been silent longer than liveness_factor x deadline (time left vs
  /// time without response). If every data-bearing replica is suspect,
  /// all are ranked anyway — the guess must never starve selection.
  bool liveness_guess = true;
  double liveness_factor = 2.0;
};

struct SelectionConfig {
  /// k: number of simultaneous member crashes the selected set must
  /// survive while still meeting the QoS. 1 reproduces Algorithm 1;
  /// 0 disables the protection trick (plain greedy; ablation baseline).
  /// Effectively clamped to n-1 for an n-replica ranking so the
  /// feasibility test always evaluates at least one replica: the test
  /// then covers the worst-case survivor set after min(k, n-1) crashes
  /// rather than declaring every small group infeasible outright.
  std::size_t crash_tolerance = 1;

  /// Behaviour when the requested probability is unreachable.
  InfeasibleFallback infeasible_fallback = InfeasibleFallback::kAllReplicas;

  /// §5.3.3: select with F_Ri(t - delta) instead of F_Ri(t), where delta
  /// is the measured overhead of the algorithm itself.
  bool overhead_compensation = true;

  /// Append replicas that have no recorded history yet (e.g. fresh group
  /// members) to the selected set so their windows can bootstrap. They do
  /// not participate in the probability test.
  bool include_dataless = true;

  /// Load-compensated ranking (off reproduces the paper exactly).
  LoadScoreConfig load;
};

/// Backlog converted into a time penalty: (weighted queue EWMA + own
/// in-flight + positive trend) x estimated per-request service time.
/// Zero until the service-rate EWMA has a sample.
[[nodiscard]] Duration load_penalty(const ReplicaObservation& obs, const LoadScoreConfig& load);

/// The liveness guess: true when the replica should be skipped outright.
[[nodiscard]] bool load_suspect(const ReplicaObservation& obs, const QosSpec& qos,
                                const LoadScoreConfig& load);

/// The compensated score: F_Ri evaluated at (effective deadline - load
/// penalty). Monotone non-increasing in queue length and own in-flight
/// count for a fixed history (the penalty only shrinks the deadline and
/// the cdf is monotone in it).
[[nodiscard]] double load_score(const ResponseTimeModel& model, const ReplicaObservation& obs,
                                Duration effective_deadline, const LoadScoreConfig& load);

/// Per-replica diagnostic emitted with each selection.
struct RankedReplica {
  ReplicaId id;
  /// F_Ri(t - delta); 0 for dataless replicas.
  double probability = 0.0;
  bool has_data = false;
  /// The load-compensated score this replica was ranked by; 0 whenever
  /// LoadScoreConfig::enabled is false (so default-config results stay
  /// byte-identical to the pre-score selector).
  double score = 0.0;

  friend bool operator==(const RankedReplica&, const RankedReplica&) = default;
};

/// Power-of-two-choices spread over a score-sorted ranking: within each
/// maximal run of entries scoring within p2c_epsilon of the run head,
/// repeatedly draw two distinct members and emit the one with the lower
/// load penalty first. Different gateways (different rng streams) thus
/// pick different members of a near-equal band instead of all herding
/// onto the id tiebreak. `observations` supplies the penalties.
void two_choice_spread(std::vector<RankedReplica>& ranked,
                       std::span<const ReplicaObservation> observations,
                       const LoadScoreConfig& load, Rng& rng);

struct SelectionResult {
  /// K: replicas the request is multicast to. Protected members first,
  /// then the candidate set in rank order, then bootstrapped dataless
  /// members.
  std::vector<ReplicaId> selected;

  /// P_K(t): predicted probability over every selected replica with data.
  double predicted_probability = 0.0;

  /// P_X(t): the probability used in the feasibility test (excludes the
  /// protected members).
  double test_probability = 0.0;

  /// True if the greedy loop satisfied P_X(t) >= P_c(t); false means the
  /// whole replica set M was returned.
  bool feasible = false;

  /// True when the repository had no history at all, so every replica was
  /// selected to bootstrap measurements (§5.4.1).
  bool cold_start = false;

  /// Number of top-ranked replicas held out of the feasibility test by
  /// the crash-tolerance rule (the generalised m0; 0 on cold start).
  std::size_t protected_count = 0;

  /// Replicas the liveness guess excluded from the ranking entirely
  /// (always 0 when the load score is disabled, or when the all-suspect
  /// fallback ranked them after all).
  std::size_t suspects = 0;

  /// Replicas sorted by decreasing F_Ri(t - delta) (diagnostics).
  std::vector<RankedReplica> ranked;

  [[nodiscard]] std::size_t redundancy() const { return selected.size(); }

  /// Exact equality, doubles included — the model-cache equivalence
  /// property (cached and uncached selection agree bit-for-bit) asserts
  /// with this.
  friend bool operator==(const SelectionResult&, const SelectionResult&) = default;
};

class ReplicaSelector {
 public:
  explicit ReplicaSelector(SelectionConfig config = {}, ResponseTimeModel model = ResponseTimeModel{});

  /// Run Algorithm 1. `overhead_delta` is the most recent measurement of
  /// the algorithm's own cost (ignored unless overhead_compensation).
  /// Observations must be non-empty and have distinct replica ids.
  /// `rng` powers the power-of-two-choices spread among near-equal
  /// candidates; it is only drawn when the load score is enabled AND a
  /// non-null rng is passed, so existing callers stay bit-identical.
  [[nodiscard]] SelectionResult select(std::span<const ReplicaObservation> observations,
                                       const QosSpec& qos,
                                       Duration overhead_delta = Duration::zero(),
                                       Rng* rng = nullptr) const;

  [[nodiscard]] const SelectionConfig& config() const { return config_; }
  [[nodiscard]] const ResponseTimeModel& model() const { return model_; }

 private:
  SelectionConfig config_;
  ResponseTimeModel model_;
};

/// Most recent measured value of the selection overhead delta (§5.3.3:
/// "we measure this overhead, delta, each time the selection algorithm is
/// executed, and use the most recently measured value").
class OverheadEstimator {
 public:
  explicit OverheadEstimator(Duration initial = Duration::zero()) : current_(initial) {}

  void record(Duration measured) {
    if (measured >= Duration::zero()) current_ = measured;
  }

  [[nodiscard]] Duration current() const { return current_; }

 private:
  Duration current_;
};

}  // namespace aqua::core
