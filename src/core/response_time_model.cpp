#include "core/response_time_model.h"

#include <cmath>

#include "common/assert.h"

namespace aqua::core {

ResponseTimeModel::ResponseTimeModel(ModelConfig config) : config_(config) {
  AQUA_REQUIRE(config_.bin_width >= Duration::zero(), "bin width must be non-negative");
}

stats::EmpiricalPmf ResponseTimeModel::response_pmf(const ReplicaObservation& obs) const {
  if (!obs.has_data()) return {};
  stats::EmpiricalPmf service = stats::EmpiricalPmf::from_samples(obs.service_samples);
  stats::EmpiricalPmf queuing = stats::EmpiricalPmf::from_samples(obs.queuing_samples);
  if (config_.bin_width > Duration::zero()) {
    service = service.binned(config_.bin_width);
    queuing = queuing.binned(config_.bin_width);
  }
  stats::EmpiricalPmf response = convolve(service, queuing);

  Duration extra_shift = Duration::zero();
  if (config_.queue_backlog_shift && obs.queue_length > 0) {
    extra_shift += Duration{static_cast<std::int64_t>(
        std::llround(service.mean_us() * static_cast<double>(obs.queue_length)))};
  }

  if (config_.windowed_gateway_delay && !obs.gateway_samples.empty()) {
    stats::EmpiricalPmf gateway = stats::EmpiricalPmf::from_samples(obs.gateway_samples);
    if (config_.bin_width > Duration::zero()) gateway = gateway.binned(config_.bin_width);
    return convolve(response, gateway).shifted(extra_shift);
  }
  return response.shifted(obs.gateway_delay + extra_shift);
}

double ResponseTimeModel::probability_by(const ReplicaObservation& obs, Duration deadline) const {
  if (deadline <= Duration::zero()) return 0.0;
  return response_pmf(obs).cdf_at(deadline);
}

}  // namespace aqua::core
