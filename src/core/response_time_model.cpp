#include "core/response_time_model.h"

#include <cmath>

#include "common/assert.h"
#include "core/model_cache.h"

namespace aqua::core {

ResponseTimeModel::ResponseTimeModel(ModelConfig config)
    : ResponseTimeModel(config, nullptr) {}

ResponseTimeModel::ResponseTimeModel(ModelConfig config, std::shared_ptr<ModelCache> cache)
    : config_(config), cache_(std::move(cache)) {
  AQUA_REQUIRE(config_.bin_width >= Duration::zero(), "bin width must be non-negative");
}

stats::EmpiricalPmf ResponseTimeModel::compute_pmf(const ReplicaObservation& obs) const {
  stats::EmpiricalPmf service = stats::EmpiricalPmf::from_samples(obs.service_samples);
  stats::EmpiricalPmf queuing = stats::EmpiricalPmf::from_samples(obs.queuing_samples);

  Duration extra_shift = Duration::zero();
  if (config_.queue_backlog_shift && obs.queue_length > 0) {
    // Mean of the RAW service samples: binning floors every atom by up to
    // bin_width, which would bias the shift by up to queue_length *
    // bin_width/2.
    extra_shift += Duration{static_cast<std::int64_t>(
        std::llround(service.mean_us() * static_cast<double>(obs.queue_length)))};
  }

  if (config_.bin_width > Duration::zero()) {
    service = service.binned(config_.bin_width);
    queuing = queuing.binned(config_.bin_width);
  }
  stats::EmpiricalPmf response = convolve(service, queuing);

  if (config_.windowed_gateway_delay && !obs.gateway_samples.empty()) {
    stats::EmpiricalPmf gateway = stats::EmpiricalPmf::from_samples(obs.gateway_samples);
    if (config_.bin_width > Duration::zero()) gateway = gateway.binned(config_.bin_width);
    return convolve(response, gateway).shifted(extra_shift);
  }
  return response.shifted(obs.gateway_delay + extra_shift);
}

stats::EmpiricalPmf ResponseTimeModel::response_pmf(const ReplicaObservation& obs) const {
  if (!obs.has_data()) return {};
  if (cache_ && obs.generation != 0) {
    if (const stats::EmpiricalPmf* hit = cache_->find(config_, obs)) return *hit;
    return cache_->store(config_, obs, compute_pmf(obs));
  }
  return compute_pmf(obs);
}

double ResponseTimeModel::probability_by(const ReplicaObservation& obs, Duration deadline) const {
  if (deadline <= Duration::zero()) return 0.0;
  if (!obs.has_data()) return 0.0;
  if (cache_ && obs.generation != 0) {
    if (const stats::EmpiricalPmf* hit = cache_->find(config_, obs)) return hit->cdf_at(deadline);
    return cache_->store(config_, obs, compute_pmf(obs)).cdf_at(deadline);
  }
  return compute_pmf(obs).cdf_at(deadline);
}

}  // namespace aqua::core
