#include "core/model_cache.h"

namespace aqua::core {

const stats::EmpiricalPmf* ModelCache::find(const ModelConfig& config,
                                            const ReplicaObservation& obs) {
  auto it = entries_.find({obs.id, obs.method});
  if (it != entries_.end() && it->second.generation == obs.generation &&
      it->second.config == config) {
    ++stats_.hits;
    return &it->second.pmf;
  }
  ++stats_.misses;
  return nullptr;
}

const stats::EmpiricalPmf& ModelCache::store(const ModelConfig& config,
                                             const ReplicaObservation& obs,
                                             stats::EmpiricalPmf pmf) {
  auto [it, inserted] = entries_.try_emplace({obs.id, obs.method});
  if (!inserted) ++stats_.invalidations;
  it->second.generation = obs.generation;
  it->second.config = config;
  it->second.pmf = std::move(pmf);
  return it->second.pmf;
}

void ModelCache::invalidate(ReplicaId replica) {
  auto it = entries_.lower_bound({replica, std::string{}});
  while (it != entries_.end() && it->first.first == replica) {
    it = entries_.erase(it);
    ++stats_.evictions;
  }
}

void ModelCache::clear() {
  stats_.evictions += entries_.size();
  entries_.clear();
}

}  // namespace aqua::core
