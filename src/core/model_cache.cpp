#include "core/model_cache.h"

#include "obs/telemetry.h"

namespace aqua::core {

const stats::EmpiricalPmf* ModelCache::find(const ModelConfig& config,
                                            const ReplicaObservation& obs) {
  auto it = entries_.find({obs.id, obs.method});
  if (it != entries_.end() && it->second.generation == obs.generation &&
      it->second.config == config) {
    ++stats_.hits;
    if (hits_counter_ != nullptr) hits_counter_->add();
    return &it->second.pmf;
  }
  ++stats_.misses;
  if (misses_counter_ != nullptr) misses_counter_->add();
  return nullptr;
}

const stats::EmpiricalPmf& ModelCache::store(const ModelConfig& config,
                                             const ReplicaObservation& obs,
                                             stats::EmpiricalPmf pmf) {
  auto [it, inserted] = entries_.try_emplace({obs.id, obs.method});
  if (!inserted) {
    ++stats_.invalidations;
    if (invalidations_counter_ != nullptr) invalidations_counter_->add();
  }
  it->second.generation = obs.generation;
  it->second.config = config;
  it->second.pmf = std::move(pmf);
  return it->second.pmf;
}

void ModelCache::invalidate(ReplicaId replica) {
  auto it = entries_.lower_bound({replica, std::string{}});
  std::uint64_t dropped = 0;
  while (it != entries_.end() && it->first.first == replica) {
    it = entries_.erase(it);
    ++dropped;
  }
  stats_.evictions += dropped;
  if (evictions_counter_ != nullptr && dropped > 0) evictions_counter_->add(dropped);
}

void ModelCache::clear() {
  const auto dropped = static_cast<std::uint64_t>(entries_.size());
  stats_.evictions += dropped;
  if (evictions_counter_ != nullptr && dropped > 0) evictions_counter_->add(dropped);
  entries_.clear();
}

void ModelCache::set_telemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    invalidations_counter_ = nullptr;
    evictions_counter_ = nullptr;
    return;
  }
  auto& metrics = telemetry->metrics();
  hits_counter_ = &metrics.counter("model_cache.hits");
  misses_counter_ = &metrics.counter("model_cache.misses");
  invalidations_counter_ = &metrics.counter("model_cache.invalidations");
  evictions_counter_ = &metrics.counter("model_cache.evictions");
}

}  // namespace aqua::core
