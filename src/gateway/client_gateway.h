// Client gateway facade: one gateway process, one timing fault handler
// per service (§2/§5.2: "An AQuA client uses different gateway handlers
// to communicate with different server groups ... a client that is
// communicating with multiple servers would have multiple handlers
// loaded in its gateway").
#pragma once

#include <map>
#include <memory>
#include <string>

#include "gateway/timing_fault_handler.h"
#include "net/group.h"
#include "net/lan.h"
#include "sim/simulator.h"

namespace aqua::gateway {

class ClientGateway {
 public:
  /// A gateway for the client process on `host`. Handlers are loaded on
  /// demand per service.
  ClientGateway(sim::Simulator& simulator, net::Lan& lan, ClientId client, HostId host,
                Rng rng)
      : simulator_(simulator), lan_(lan), client_(client), host_(host), rng_(std::move(rng)) {}

  ClientGateway(const ClientGateway&) = delete;
  ClientGateway& operator=(const ClientGateway&) = delete;

  /// Load (or fetch) the handler for `service_group`, keyed by `name`.
  /// The QoS/config of an already-loaded handler are not altered; use
  /// handler(name).set_qos() to renegotiate.
  TimingFaultHandler& load_handler(const std::string& name, net::MulticastGroup& service_group,
                                   core::QosSpec qos, HandlerConfig config = {},
                                   core::PolicyPtr policy = nullptr) {
    auto it = handlers_.find(name);
    if (it == handlers_.end()) {
      it = handlers_
               .emplace(name, std::make_unique<TimingFaultHandler>(
                                  simulator_, lan_, service_group, client_, host_, qos,
                                  rng_.fork(name), std::move(config), std::move(policy)))
               .first;
    }
    return *it->second;
  }

  /// Handler previously loaded for `name`; throws if absent.
  [[nodiscard]] TimingFaultHandler& handler(const std::string& name) {
    auto it = handlers_.find(name);
    AQUA_REQUIRE(it != handlers_.end(), "no handler loaded for service '" + name + "'");
    return *it->second;
  }

  [[nodiscard]] bool has_handler(const std::string& name) const {
    return handlers_.contains(name);
  }
  [[nodiscard]] std::size_t handler_count() const { return handlers_.size(); }
  [[nodiscard]] ClientId client() const { return client_; }
  [[nodiscard]] HostId host() const { return host_; }

 private:
  sim::Simulator& simulator_;
  net::Lan& lan_;
  ClientId client_;
  HostId host_;
  Rng rng_;
  std::map<std::string, std::unique_ptr<TimingFaultHandler>> handlers_;
};

}  // namespace aqua::gateway
