// Active replication handler with majority voting.
//
// §2: previous AQuA work "addressed the issue of tolerating crash
// failures using the active [18] and passive [17] handlers. [16] also
// discusses how AQuA simultaneously tolerates value faults and crash
// failures using an active handler." This is that sibling handler,
// rebuilt on the same substrates: every request is multicast to ALL
// replicas, and a result is delivered once a majority of the dispatched
// replicas agree on it — masking both crashes and value faults, at the
// cost of waiting for the median replica instead of the fastest.
//
// The contrast with the TimingFaultHandler is the point of the paper's
// design space: first-reply delivery optimises latency but trusts every
// reply; majority voting pays latency for value-fault tolerance.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "net/group.h"
#include "net/lan.h"
#include "proto/messages.h"
#include "sim/simulator.h"

namespace aqua::gateway {

struct VotingConfig {
  /// Interception + marshalling cost before transmission.
  Duration interception = usec(120);
  /// If no majority forms within this time, deliver a failure outcome.
  Duration vote_timeout = sec(2);
  /// Wait for the Announce burst before the first dispatch.
  Duration discovery_settle = msec(1);
};

/// Outcome of one voted invocation.
struct VotedReply {
  RequestId request;
  bool decided = false;           // a majority formed
  std::int64_t result = 0;        // majority value (when decided)
  std::size_t votes = 0;          // replies agreeing with the majority
  std::size_t dissenting = 0;     // replies with a different value
  std::size_t dispatched = 0;     // replicas the request was sent to
  Duration response_time{};       // t_decided - t0 (or timeout)
};

class ActiveVotingHandler {
 public:
  using ReplyCallback = std::function<void(const VotedReply&)>;

  ActiveVotingHandler(sim::Simulator& simulator, net::Lan& lan, net::MulticastGroup& group,
                      ClientId client, HostId host, Rng rng, VotingConfig config = {});

  ActiveVotingHandler(const ActiveVotingHandler&) = delete;
  ActiveVotingHandler& operator=(const ActiveVotingHandler&) = delete;

  /// Invoke on all replicas; `on_reply` fires once — when a majority of
  /// dispatched replicas agree, or at the vote timeout.
  RequestId invoke(std::int64_t argument, ReplyCallback on_reply,
                   const std::string& method = "invoke");

  [[nodiscard]] ClientId client() const { return client_; }
  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] std::size_t known_replicas() const { return replica_endpoints_.size(); }

  /// Decided invocations whose majority value was outvoted by dissent
  /// (diagnostics for value-fault experiments).
  [[nodiscard]] std::uint64_t decided() const { return decided_; }
  [[nodiscard]] std::uint64_t undecided() const { return undecided_; }

 private:
  struct PendingVote {
    TimePoint t0{};
    std::size_t dispatched = 0;
    std::map<std::int64_t, std::size_t> tally;  // result value -> votes
    std::size_t replies = 0;
    ReplyCallback on_reply;
    bool delivered = false;
    bool dispatched_flag = false;
    std::int64_t argument = 0;
    std::string method;
    sim::EventHandle timeout;
  };

  void on_receive(EndpointId from, const net::Payload& message);
  void handle_reply(const proto::Reply& reply);
  void handle_announce(const proto::Announce& announce);
  void dispatch(RequestId id, PendingVote& pending);
  void deliver(RequestId id, PendingVote& pending, bool decided);

  sim::Simulator& simulator_;
  net::Lan& lan_;
  net::MulticastGroup& group_;
  ClientId client_;
  Rng rng_;
  VotingConfig config_;
  EndpointId endpoint_;
  IdGenerator<RequestId> request_ids_;
  std::unordered_map<ReplicaId, EndpointId> replica_endpoints_;
  std::unordered_map<EndpointId, ReplicaId> endpoint_replicas_;
  std::unordered_map<RequestId, PendingVote> pending_;
  sim::EventHandle parked_dispatch_;
  std::uint64_t decided_ = 0;
  std::uint64_t undecided_ = 0;
};

}  // namespace aqua::gateway
