#include "gateway/active_voting_handler.h"

#include "common/assert.h"
#include "common/log.h"

namespace aqua::gateway {

ActiveVotingHandler::ActiveVotingHandler(sim::Simulator& simulator, net::Lan& lan,
                                         net::MulticastGroup& group, ClientId client, HostId host,
                                         Rng rng, VotingConfig config)
    : simulator_(simulator),
      lan_(lan),
      group_(group),
      client_(client),
      rng_(std::move(rng)),
      config_(config) {
  AQUA_REQUIRE(config_.vote_timeout > Duration::zero(), "vote timeout must be positive");
  endpoint_ = lan_.create_endpoint(
      host, [this](EndpointId from, const net::Payload& m) { on_receive(from, m); });
  group_.join(endpoint_);
  group_.on_view_change(endpoint_, [this](const net::View&, std::span<const EndpointId> departed) {
    for (EndpointId gone : departed) {
      if (auto it = endpoint_replicas_.find(gone); it != endpoint_replicas_.end()) {
        replica_endpoints_.erase(it->second);
        endpoint_replicas_.erase(it);
      }
    }
  });
  group_.broadcast(endpoint_,
                   net::Payload::make(proto::Subscribe{client_, endpoint_}, proto::kSubscribeBytes));
}

RequestId ActiveVotingHandler::invoke(std::int64_t argument, ReplyCallback on_reply,
                                      const std::string& method) {
  AQUA_REQUIRE(on_reply != nullptr, "reply callback must be callable");
  const RequestId id = request_ids_.next();

  PendingVote pending;
  pending.t0 = simulator_.now();
  pending.on_reply = std::move(on_reply);
  pending.argument = argument;
  pending.method = method;
  pending.timeout = simulator_.schedule_after(config_.vote_timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end() || it->second.delivered) return;
    deliver(id, it->second, /*decided=*/false);
  });
  pending_.emplace(id, std::move(pending));

  simulator_.schedule_after(config_.interception, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    dispatch(id, it->second);
  });
  return id;
}

void ActiveVotingHandler::dispatch(RequestId id, PendingVote& pending) {
  if (replica_endpoints_.empty()) return;  // handle_announce re-dispatches
  pending.dispatched_flag = true;
  std::vector<EndpointId> targets;
  targets.reserve(replica_endpoints_.size());
  for (const auto& [replica, endpoint] : replica_endpoints_) targets.push_back(endpoint);
  pending.dispatched = targets.size();
  proto::Request request{id, client_, pending.method, pending.argument};
  group_.send(endpoint_, targets, net::Payload::make(request, proto::kRequestBytes));
}

void ActiveVotingHandler::on_receive(EndpointId, const net::Payload& message) {
  if (const auto* reply = message.get_if<proto::Reply>()) {
    handle_reply(*reply);
    return;
  }
  if (const auto* announce = message.get_if<proto::Announce>()) {
    handle_announce(*announce);
    return;
  }
  // Performance updates and sibling-client subscribes are irrelevant to
  // the voting handler.
}

void ActiveVotingHandler::handle_reply(const proto::Reply& reply) {
  auto it = pending_.find(reply.request);
  if (it == pending_.end()) return;
  PendingVote& pending = it->second;
  if (pending.delivered) return;
  ++pending.replies;
  const std::size_t votes = ++pending.tally[reply.result];
  const std::size_t majority = pending.dispatched / 2 + 1;
  if (votes >= majority) {
    deliver(reply.request, pending, /*decided=*/true);
    return;
  }
  // All replies are in but nothing reached a majority (ties / heavy
  // corruption): fail fast instead of waiting for the timeout.
  if (pending.replies >= pending.dispatched) {
    deliver(reply.request, pending, /*decided=*/false);
  }
}

void ActiveVotingHandler::deliver(RequestId id, PendingVote& pending, bool decided) {
  pending.delivered = true;
  pending.timeout.cancel();
  VotedReply out;
  out.request = id;
  out.decided = decided;
  out.dispatched = pending.dispatched;
  out.response_time = simulator_.now() - pending.t0;
  if (decided) {
    // The value with the most votes (ties broken by value; a decided
    // delivery means one value reached the majority threshold).
    std::size_t best = 0;
    for (const auto& [value, votes] : pending.tally) {
      if (votes > best) {
        best = votes;
        out.result = value;
      }
    }
    out.votes = best;
    out.dissenting = pending.replies - best;
    ++decided_;
  } else {
    out.votes = 0;
    out.dissenting = pending.replies;
    ++undecided_;
  }
  ReplyCallback cb = std::move(pending.on_reply);
  pending_.erase(id);
  cb(out);
}

void ActiveVotingHandler::handle_announce(const proto::Announce& announce) {
  auto [it, inserted] = replica_endpoints_.try_emplace(announce.replica, announce.endpoint);
  if (!inserted && it->second == announce.endpoint) return;
  if (!inserted) {
    endpoint_replicas_.erase(it->second);
    it->second = announce.endpoint;
  }
  endpoint_replicas_[announce.endpoint] = announce.replica;
  lan_.unicast(endpoint_, announce.endpoint,
               net::Payload::make(proto::Subscribe{client_, endpoint_}, proto::kSubscribeBytes));
  parked_dispatch_.cancel();
  parked_dispatch_ = simulator_.schedule_after(config_.discovery_settle, [this] {
    std::vector<RequestId> parked;
    for (const auto& [id, pending] : pending_) {
      if (!pending.dispatched_flag && !pending.delivered) parked.push_back(id);
    }
    for (RequestId id : parked) {
      auto it = pending_.find(id);
      if (it != pending_.end() && !it->second.dispatched_flag) dispatch(id, it->second);
    }
  });
}

}  // namespace aqua::gateway
