#include "gateway/client_app.h"

#include "common/assert.h"
#include "common/log.h"

namespace aqua::gateway {

ClientApp::ClientApp(sim::Simulator& simulator, TimingFaultHandler& handler,
                     ClientWorkload workload, Rng rng)
    : simulator_(simulator), handler_(handler), workload_(std::move(workload)), rng_(std::move(rng)) {
  if (!workload_.think_time) workload_.think_time = stats::make_constant(sec(1));
  AQUA_REQUIRE(workload_.give_up_after > Duration::zero(), "give-up timeout must be positive");
  handler_.on_qos_violation([this](double fraction) {
    ++violations_;
    if (violation_observer_) violation_observer_(fraction);
  });
}

void ClientApp::start() {
  simulator_.schedule_after(workload_.start_delay, [this] { issue_next(); });
}

bool ClientApp::done() const {
  return workload_.total_requests != 0 && issued_ >= workload_.total_requests && !waiting_;
}

void ClientApp::issue_next() {
  if (workload_.total_requests != 0 && issued_ >= workload_.total_requests) return;
  ++issued_;
  waiting_ = true;
  const RequestId id = handler_.invoke(
      static_cast<std::int64_t>(issued_),
      [this](const ReplyInfo& info) { on_reply(info.request, info); }, workload_.method);
  current_ = id;
  give_up_timer_ = simulator_.schedule_after(workload_.give_up_after, [this, id] {
    if (!waiting_ || current_ != id) return;
    waiting_ = false;
    ++abandoned_;
    AQUA_LOG_DEBUG << "client " << handler_.client().value() << ": abandoning request "
                   << id.value();
    issue_next();
  });
}

void ClientApp::on_reply(RequestId id, const ReplyInfo&) {
  if (!waiting_ || current_ != id) return;  // reply for an abandoned request
  waiting_ = false;
  ++answered_;
  give_up_timer_.cancel();
  const Duration think = workload_.think_time->sample(rng_);
  simulator_.schedule_after(think, [this] { issue_next(); });
}

trace::ClientRunReport ClientApp::report() const {
  trace::ClientRunReport report;
  report.label = "client-" + std::to_string(handler_.client().value());
  report.qos_violation_callbacks = violations_;
  const TimePoint now = simulator_.now();
  for (const RequestRecord& record : handler_.history()) {
    if (record.probe) continue;  // handler-initiated staleness probes
    const bool decided =
        record.response_time.has_value() || now >= record.intercepted_at + record.qos.deadline;
    if (!decided) continue;
    ++report.requests;
    if (record.response_time.has_value()) {
      ++report.answered;
      report.response_times_ms.add(to_ms(*record.response_time));
    }
    if (!record.timely) ++report.timing_failures;
    if (record.cold_start) ++report.cold_starts;
    if (!record.feasible && !record.cold_start) ++report.infeasible_selections;
    if (record.redispatched) ++report.redispatches;
    report.redundancy.add(static_cast<double>(record.redundancy));
  }
  return report;
}

}  // namespace aqua::gateway
