// Passive replication handler (§2, [17]).
//
// AQuA's passive handler sends each request to a single PRIMARY replica;
// backups exist only to take over after a crash. For the stateless
// services this paper targets, failover is pure re-direction: when the
// membership view excludes the primary, the handler promotes the next
// known replica and re-sends whatever was in flight. Compared with the
// timing fault handler, the passive scheme has minimal load (one replica
// per request) but every primary crash costs at least one
// failure-detection interval of outage — the gap Algorithm 1's
// redundancy closes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "common/time.h"
#include "net/group.h"
#include "net/lan.h"
#include "proto/messages.h"
#include "sim/simulator.h"

namespace aqua::gateway {

struct PassiveConfig {
  /// Interception + marshalling cost before transmission.
  Duration interception = usec(120);
  /// Wait for the Announce burst before the first dispatch.
  Duration discovery_settle = msec(1);
};

/// Outcome of one passive invocation.
struct PassiveReply {
  RequestId request;
  ReplicaId primary;              // the replica that answered
  std::int64_t result = 0;
  Duration response_time{};
  std::size_t failovers = 0;      // primary promotions while in flight
};

class PassiveReplicationHandler {
 public:
  using ReplyCallback = std::function<void(const PassiveReply&)>;

  PassiveReplicationHandler(sim::Simulator& simulator, net::Lan& lan, net::MulticastGroup& group,
                            ClientId client, HostId host, PassiveConfig config = {});

  PassiveReplicationHandler(const PassiveReplicationHandler&) = delete;
  PassiveReplicationHandler& operator=(const PassiveReplicationHandler&) = delete;

  /// Send to the current primary; `on_reply` fires when it (or a promoted
  /// successor) answers. No give-up: with every replica dead the request
  /// stays pending until a replica appears.
  RequestId invoke(std::int64_t argument, ReplyCallback on_reply,
                   const std::string& method = "invoke");

  /// Current primary (lowest-id known replica), if any.
  [[nodiscard]] std::optional<ReplicaId> primary() const;
  [[nodiscard]] std::size_t known_replicas() const { return replica_endpoints_.size(); }
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] ClientId client() const { return client_; }

 private:
  struct PendingRequest {
    TimePoint t0{};
    std::int64_t argument = 0;
    std::string method;
    ReplyCallback on_reply;
    bool sent = false;
    std::optional<ReplicaId> sent_to;
    std::size_t failovers = 0;
  };

  void on_receive(EndpointId from, const net::Payload& message);
  void handle_reply(const proto::Reply& reply);
  void handle_announce(const proto::Announce& announce);
  void on_view_change(std::span<const EndpointId> departed);
  void send_to_primary(RequestId id, PendingRequest& pending);

  sim::Simulator& simulator_;
  net::Lan& lan_;
  net::MulticastGroup& group_;
  ClientId client_;
  PassiveConfig config_;
  EndpointId endpoint_;
  IdGenerator<RequestId> request_ids_;
  std::map<ReplicaId, EndpointId> replica_endpoints_;  // ordered: primary = begin()
  std::unordered_map<EndpointId, ReplicaId> endpoint_replicas_;
  std::unordered_map<RequestId, PendingRequest> pending_;
  sim::EventHandle parked_dispatch_;
  std::uint64_t failovers_ = 0;
};

}  // namespace aqua::gateway
