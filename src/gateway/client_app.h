// Client application driving a timing fault handler.
//
// Reproduces the paper's workload shape (§6): issue a request, wait for
// the response, think (the paper uses a constant one-second delay), issue
// the next — for a fixed number of requests per run. A give-up timer
// keeps the client live if every selected replica crashed and no reply
// will ever arrive.
#pragma once

#include <cstddef>
#include <functional>

#include "common/rng.h"
#include "common/time.h"
#include "gateway/timing_fault_handler.h"
#include "stats/variates.h"
#include "trace/report.h"

namespace aqua::gateway {

struct ClientWorkload {
  /// Requests to issue; 0 = keep issuing until the simulation ends.
  std::size_t total_requests = 50;

  /// Delay between receiving a response and issuing the next request.
  /// Defaults to the paper's constant 1 second.
  stats::SamplerPtr think_time;

  /// If no reply arrives within this time, abandon the request and move
  /// on (the outcome was already recorded as a timing failure).
  Duration give_up_after = sec(5);

  /// Issue the first request after this offset (staggers clients).
  Duration start_delay = Duration::zero();

  /// Method interface invoked (multi-interface extension); statistics in
  /// the repository are kept per method.
  std::string method = core::kDefaultMethod;
};

class ClientApp {
 public:
  ClientApp(sim::Simulator& simulator, TimingFaultHandler& handler, ClientWorkload workload,
            Rng rng);

  ClientApp(const ClientApp&) = delete;
  ClientApp& operator=(const ClientApp&) = delete;

  /// Begin issuing requests (schedules the first at start_delay).
  void start();

  [[nodiscard]] bool done() const;
  [[nodiscard]] std::size_t issued() const { return issued_; }
  [[nodiscard]] std::size_t answered() const { return answered_; }
  [[nodiscard]] std::size_t abandoned() const { return abandoned_; }
  [[nodiscard]] std::size_t qos_violations() const { return violations_; }

  [[nodiscard]] TimingFaultHandler& handler() { return handler_; }
  [[nodiscard]] const TimingFaultHandler& handler() const { return handler_; }

  /// Additional QoS-violation observer (the app itself always counts).
  void on_qos_violation(std::function<void(double)> fn) { violation_observer_ = std::move(fn); }

  /// Aggregate this client's run; decided outcomes only (requests whose
  /// deadline has not yet passed at `now` are excluded from the failure
  /// count).
  [[nodiscard]] trace::ClientRunReport report() const;

 private:
  void issue_next();
  void on_reply(RequestId id, const ReplyInfo& info);

  sim::Simulator& simulator_;
  TimingFaultHandler& handler_;
  ClientWorkload workload_;
  Rng rng_;

  std::size_t issued_ = 0;
  std::size_t answered_ = 0;
  std::size_t abandoned_ = 0;
  std::size_t violations_ = 0;
  bool waiting_ = false;
  RequestId current_{};
  sim::EventHandle give_up_timer_;
  std::function<void(double)> violation_observer_;
};

}  // namespace aqua::gateway
