// Export a handler's per-request log as CSV (raw experiment data).
#pragma once

#include <ostream>
#include <span>

#include "gateway/timing_fault_handler.h"

namespace aqua::gateway {

/// One row per request: timestamps, QoS, selection diagnostics, outcome.
/// Returns the number of rows written.
std::size_t write_history_csv(std::ostream& out, std::span<const RequestRecord> history);

}  // namespace aqua::gateway
