// The timing fault handler (§5.4) — the client-side gateway protocol
// handler that this paper contributes.
//
// Request path (§5.4.1): intercept the client call at t0, run the
// model-based selection against the local information repository, record
// the transmission time t1, multicast the request to the selected
// replicas through the group, deliver only the FIRST reply (recording
// t4), harvest the performance data piggybacked on every reply — t_s,
// t_q, queue length, and the derived two-way gateway delay
// t_d = t4 - t1 - t_q - t_s — and detect timing failures
// (t_r = t4 - t0 > t), issuing a QoS-violation callback when the timely
// fraction drops below the client's requested probability (§5.4.2).
//
// Membership: replicas advertise themselves with Announce messages; view
// changes from the group evict crashed replicas from the repository so
// "these failed replicas will therefore not be considered in the
// selection process for future requests" (§5.4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "core/failure_tracker.h"
#include "core/info_repository.h"
#include "core/model_cache.h"
#include "core/policies.h"
#include "core/qos.h"
#include "core/selection.h"
#include "net/group.h"
#include "net/lan.h"
#include "proto/messages.h"
#include "sim/periodic.h"
#include "sim/simulator.h"

namespace aqua::obs {
class Counter;
class Histogram;
class Telemetry;
}  // namespace aqua::obs

namespace aqua::gateway {

/// Cost model for the handler's own processing, charged in simulated time
/// so that the overhead-compensation path (§5.3.3) is exercised
/// deterministically. Calibrated against the fig3 micro-benchmarks: the
/// distribution computation (~90% of delta) scales with n * l^2 atoms,
/// the subset selection (~10%) with n log n.
struct OverheadModel {
  /// Fixed interception + marshalling cost (t0 -> selection start).
  Duration interception = usec(120);
  /// Fixed selection cost.
  Duration base = usec(40);
  /// Added per replica with history.
  Duration per_replica = usec(12);
  /// Added per replica per (window length)^2 convolution atom, in
  /// nanoseconds (the dominant term of the distribution computation).
  double per_atom_ns = 80.0;
  /// Added per replica served from the model cache: a map lookup plus
  /// one cdf evaluation instead of the full convolution.
  Duration per_cached_replica = usec(2);
  /// Added per chunk-request of a coded dispatch: MDS encoding and the
  /// per-copy marshalling that multicast would otherwise share.
  Duration per_chunk = usec(6);

  /// Uncached estimate: every replica pays the convolution term.
  [[nodiscard]] Duration selection_cost(std::size_t replicas, std::size_t window) const;

  /// Split estimate: `convolved` replicas pay the per-atom convolution
  /// term, `cached` replicas only per_cached_replica. The handler uses
  /// the model-cache hit/miss counters of each selection to charge this
  /// form, tightening the delta fed back into §5.3.3's compensation.
  [[nodiscard]] Duration selection_cost(std::size_t convolved, std::size_t cached,
                                        std::size_t window) const;
};

struct HandlerConfig {
  core::RepositoryConfig repository;
  core::SelectionConfig selection;
  core::ModelConfig model;
  core::FailureTrackerConfig failure_tracker;
  OverheadModel overhead;

  /// Speculative-redundancy dispatch (hedging, cancel-on-first-reply,
  /// adaptive redundancy). The default reproduces the paper's full-K
  /// multicast exactly — same events, same randomness, same traces.
  core::DispatchConfig dispatch;

  /// Extension: when a view change leaves a pending request with no live
  /// selected replica, re-run selection and re-send instead of letting
  /// the client wait forever.
  bool redispatch_on_view_change = true;

  /// Requests intercepted before any replica is known wait until the
  /// Announce burst has been quiet for this long, so the cold-start
  /// "select all replicas" really sees all of them (announces from the
  /// initial Subscribe spread over the LAN jitter).
  Duration discovery_settle = msec(1);

  /// §8 extension ("our work can also be extended to use active probes
  /// [5] when a replica's performance information is obsolete"): when
  /// positive, any replica whose repository entry is older than this is
  /// sent a lightweight probe request. Probe outcomes refresh the windows
  /// but never count toward the client's timing statistics. Zero
  /// disables probing.
  Duration probe_staleness = Duration::zero();

  /// Optional telemetry hub (non-owning; must outlive the handler).
  /// When set, the handler mirrors its request lifecycle into gateway.*
  /// metrics, emits one obs::RequestTrace per decided request and one
  /// obs::SelectionTrace per Algorithm-1 run, wraps the policy in the
  /// observed decorator, and attaches the model cache + repository
  /// counters. Null (the default) keeps every instrumented site at one
  /// branch and never perturbs the simulation: telemetry schedules no
  /// events and draws no randomness.
  obs::Telemetry* telemetry = nullptr;
};

/// Delivered to the client application for the first reply of a request.
struct ReplyInfo {
  RequestId request;
  ReplicaId replica;
  std::int64_t result = 0;
  /// t_r = t4 - t0.
  Duration response_time{};
  bool timely = false;
};

/// One row of the handler's request log (experiment raw data).
struct RequestRecord {
  RequestId request;
  TimePoint intercepted_at{};  // t0
  TimePoint transmitted_at{};  // t1
  core::QosSpec qos;
  std::size_t redundancy = 0;  // |K|
  bool cold_start = false;
  bool feasible = false;
  double predicted_probability = 0.0;
  bool redispatched = false;
  /// True for handler-initiated staleness probes; excluded from client
  /// statistics.
  bool probe = false;
  /// Hedged dispatch: the request went to the best replica only, with
  /// the rest of K held behind the hedge timer.
  bool hedged = false;
  /// The hedge timer expired (or the primary crashed) and the held-back
  /// members were actually sent.
  bool hedge_fired = false;
  /// Cancels sent to still-awaiting replicas after the completing reply.
  std::size_t cancels_sent = 0;
  /// Coded dispatch: distinct chunks required (0 = uncoded) and distinct
  /// chunk-replies collected so far.
  std::uint32_t code_k = 0;
  std::size_t chunks_received = 0;
  std::optional<Duration> response_time;  // empty until delivery
  bool timely = false;
};

class TimingFaultHandler {
 public:
  using ReplyCallback = std::function<void(const ReplyInfo&)>;
  /// Invoked when the observed timely fraction drops below the client's
  /// requested minimum probability (§5.4.2).
  using QosViolationCallback = std::function<void(double observed_timely_fraction)>;

  /// Creates the handler's gateway endpoint on `host`, joins the service
  /// group and subscribes to replica performance updates.
  TimingFaultHandler(sim::Simulator& simulator, net::Lan& lan, net::MulticastGroup& group,
                     ClientId client, HostId host, core::QosSpec qos, Rng rng,
                     HandlerConfig config = {}, core::PolicyPtr policy = nullptr);

  TimingFaultHandler(const TimingFaultHandler&) = delete;
  TimingFaultHandler& operator=(const TimingFaultHandler&) = delete;

  /// Intercept one client request (t0 = now). `on_reply` fires once, for
  /// the first reply; redundant replies only update the repository.
  RequestId invoke(std::int64_t argument, ReplyCallback on_reply,
                   const std::string& method = core::kDefaultMethod);

  /// Runtime QoS renegotiation (§4); resets the failure tracker.
  void set_qos(core::QosSpec qos);
  [[nodiscard]] const core::QosSpec& qos() const { return qos_; }

  void on_qos_violation(QosViolationCallback fn) { on_violation_ = std::move(fn); }

  [[nodiscard]] ClientId client() const { return client_; }
  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const core::InfoRepository& repository() const { return repository_; }
  [[nodiscard]] const core::TimingFailureTracker& failure_tracker() const { return tracker_; }

  /// Raw per-request log, in invocation order.
  [[nodiscard]] const std::vector<RequestRecord>& history() const { return history_; }

  /// Replicas currently known (directory built from Announce messages).
  [[nodiscard]] std::size_t known_replicas() const { return replica_endpoints_.size(); }

  /// delta currently used for overhead compensation.
  [[nodiscard]] Duration overhead_delta() const { return overhead_.current(); }

  /// Staleness probes sent so far (probe_staleness extension).
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

  /// Hedge timers that actually fired (hedged dispatch mode).
  [[nodiscard]] std::uint64_t hedges_fired() const { return hedges_fired_; }

  /// proto::Cancel messages sent after first replies.
  [[nodiscard]] std::uint64_t cancels_sent() const { return cancels_sent_; }

  /// Times the derived gateway delay t_d = t4 - t1 - t_q - t_s came out
  /// negative and was clamped to zero. Nonzero means clock bases
  /// disagree (or stale replies outlived a redispatched t1); sim runs
  /// without redispatch must stay at exactly 0.
  [[nodiscard]] std::uint64_t td_clamped() const { return td_clamped_; }

  /// Response-pmf memoization shared with the default dynamic policy
  /// (hit/miss/invalidation/eviction counters for diagnostics).
  [[nodiscard]] const core::ModelCache& model_cache() const { return *model_cache_; }

  /// Requests and probes currently in flight to `replica` (O(1); kept in
  /// sync with every pending request's awaiting set).
  [[nodiscard]] std::size_t outstanding_requests(ReplicaId replica) const {
    auto it = outstanding_.find(replica);
    return it == outstanding_.end() ? 0 : it->second;
  }

 private:
  struct PendingRequest {
    std::size_t record_index = 0;
    TimePoint t0{};
    TimePoint t1{};
    core::QosSpec qos;
    std::string method;
    std::int64_t argument = 0;
    std::vector<ReplicaId> awaiting;  // selected replicas yet to reply
    ReplyCallback on_reply;
    bool dispatched = false;  // selection ran with a non-empty directory
    bool delivered = false;
    bool outcome_recorded = false;
    bool is_probe = false;
    sim::EventHandle deadline_timer;

    /// Hedged dispatch: members of K not yet transmitted, waiting on the
    /// hedge timer (they are NOT in awaiting until the hedge fires).
    std::vector<ReplicaId> hedge_set;
    sim::EventHandle hedge_timer;

    /// Completion predicate state. Default-constructed it is the paper's
    /// first-of-n (so the default path never arms it); a non-default
    /// dispatch plan arms it once, at the first dispatch, and every reply
    /// is recorded through it. Delivery happens on the reply whose
    /// record() returns true — the k-th distinct chunk for k-of-n.
    core::ReplyCollector collector;
    /// Chunks per copy of a coded dispatch (0 = uncoded); fixed at the
    /// first dispatch so redispatches keep the same decoding contract.
    std::uint32_t code_k = 0;
    /// Next fresh chunk index — rateless MDS: every newly assigned index
    /// is distinct, so redispatch/hedge copies always add information.
    std::uint32_t next_chunk = 0;

    /// First reply's perf triple, stashed for the telemetry trace.
    TimePoint t4{};
    Duration first_service{};
    Duration first_queuing{};
    Duration first_gateway{};
    ReplicaId first_replica{};

    /// Sequence of the emitted obs::RequestTrace, for the late-reply
    /// amendment (valid while trace_recorded).
    std::uint64_t trace_seq = 0;
    bool trace_recorded = false;

    /// Causal tracing (obs/span.h): the request's trace id and its root
    /// kRequest span id. The root id is allocated lazily at the first
    /// hop that needs a parent and the span itself is recorded — closed
    /// — when the outcome is decided, so no crash can leave it open.
    std::uint64_t trace_id = 0;
    std::uint64_t root_span = 0;
  };

  void on_receive(EndpointId from, const net::Payload& message);
  void handle_reply(const proto::Reply& reply);
  void handle_perf_update(const proto::PerfUpdate& update);
  void handle_announce(const proto::Announce& announce);
  void on_view_change(const net::View& view, std::span<const EndpointId> departed);
  void dispatch(RequestId id, PendingRequest& pending, bool redispatch);
  /// Transmit the held-back hedge set now (timer expiry, or the primary
  /// crashed before replying). No-op once the request was delivered.
  void fire_hedge(RequestId id);
  /// Cancel-on-first-reply: withdraw the request from every replica
  /// still awaited, then stop awaiting them.
  void send_cancels(RequestId id, PendingRequest& pending);
  void record_outcome(PendingRequest& pending, bool timely);
  void emit_request_trace(PendingRequest& pending, bool timely);
  void finish_if_complete(RequestId id);
  void probe_stale_replicas();
  void send_probe(ReplicaId replica);

  // The awaiting set of a pending request is only ever changed through
  // these three, which keep the per-replica outstanding_ counts in sync.
  void set_awaiting(PendingRequest& pending, std::vector<ReplicaId> replicas);
  void add_awaiting(PendingRequest& pending, std::span<const ReplicaId> replicas);
  void remove_awaiting(PendingRequest& pending, ReplicaId replica);
  void erase_pending(RequestId id);
  void drop_outstanding(ReplicaId replica, std::size_t count);

  sim::Simulator& simulator_;
  net::Lan& lan_;
  net::MulticastGroup& group_;
  ClientId client_;
  core::QosSpec qos_;
  Rng rng_;
  HandlerConfig config_;
  std::shared_ptr<core::ModelCache> model_cache_;
  /// Shares the model cache with the default policy; evaluated only in
  /// hedged mode (the hedge-delay quantile), never on the default path.
  core::ResponseTimeModel dispatch_model_;
  core::PolicyPtr policy_;
  core::InfoRepository repository_;
  core::TimingFailureTracker tracker_;
  core::OverheadEstimator overhead_;

  EndpointId endpoint_;
  IdGenerator<RequestId> request_ids_;
  std::unordered_map<ReplicaId, EndpointId> replica_endpoints_;
  std::unordered_map<EndpointId, ReplicaId> endpoint_replicas_;
  std::unordered_map<RequestId, PendingRequest> pending_;
  /// replica -> number of pending awaiting entries naming it (absent = 0).
  std::unordered_map<ReplicaId, std::size_t> outstanding_;
  std::vector<RequestRecord> history_;
  QosViolationCallback on_violation_;
  sim::EventHandle parked_dispatch_;
  sim::PeriodicTask probe_task_;
  bool violation_reported_ = false;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t hedges_fired_ = 0;
  std::uint64_t cancels_sent_ = 0;
  std::uint64_t td_clamped_ = 0;

  /// Telemetry wiring: obs_ mirrors config_.telemetry; the metric
  /// pointers are resolved once in the constructor and stay null when
  /// telemetry is disabled (one-branch discipline on every hot site).
  obs::Telemetry* obs_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* probes_counter_ = nullptr;
  obs::Counter* replies_counter_ = nullptr;
  obs::Counter* timely_counter_ = nullptr;
  obs::Counter* timing_failures_counter_ = nullptr;
  obs::Counter* redispatches_counter_ = nullptr;
  obs::Counter* hedges_counter_ = nullptr;
  obs::Counter* cancels_counter_ = nullptr;
  obs::Counter* qos_violations_counter_ = nullptr;
  obs::Counter* replicas_evicted_counter_ = nullptr;
  obs::Counter* td_clamped_counter_ = nullptr;
  obs::Histogram* response_time_histogram_ = nullptr;
  obs::Histogram* selection_delta_histogram_ = nullptr;
  /// Non-null only when telemetry is attached and spans are enabled in
  /// its config; gates every span-recording site at one branch.
  obs::Telemetry* span_sink_ = nullptr;
};

}  // namespace aqua::gateway
