#include "gateway/passive_handler.h"

#include "common/assert.h"
#include "common/log.h"

namespace aqua::gateway {

PassiveReplicationHandler::PassiveReplicationHandler(sim::Simulator& simulator, net::Lan& lan,
                                                     net::MulticastGroup& group, ClientId client,
                                                     HostId host, PassiveConfig config)
    : simulator_(simulator), lan_(lan), group_(group), client_(client), config_(config) {
  endpoint_ = lan_.create_endpoint(
      host, [this](EndpointId from, const net::Payload& m) { on_receive(from, m); });
  group_.join(endpoint_);
  group_.on_view_change(endpoint_, [this](const net::View&, std::span<const EndpointId> departed) {
    on_view_change(departed);
  });
  group_.broadcast(endpoint_,
                   net::Payload::make(proto::Subscribe{client_, endpoint_}, proto::kSubscribeBytes));
}

std::optional<ReplicaId> PassiveReplicationHandler::primary() const {
  if (replica_endpoints_.empty()) return std::nullopt;
  return replica_endpoints_.begin()->first;
}

RequestId PassiveReplicationHandler::invoke(std::int64_t argument, ReplyCallback on_reply,
                                            const std::string& method) {
  AQUA_REQUIRE(on_reply != nullptr, "reply callback must be callable");
  const RequestId id = request_ids_.next();
  PendingRequest pending;
  pending.t0 = simulator_.now();
  pending.argument = argument;
  pending.method = method;
  pending.on_reply = std::move(on_reply);
  pending_.emplace(id, std::move(pending));
  simulator_.schedule_after(config_.interception, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    send_to_primary(id, it->second);
  });
  return id;
}

void PassiveReplicationHandler::send_to_primary(RequestId id, PendingRequest& pending) {
  if (replica_endpoints_.empty()) return;  // re-sent on the next announce
  const auto [replica, ep] = *replica_endpoints_.begin();
  pending.sent = true;
  pending.sent_to = replica;
  proto::Request request{id, client_, pending.method, pending.argument};
  lan_.unicast(endpoint_, ep, net::Payload::make(request, proto::kRequestBytes));
}

void PassiveReplicationHandler::on_receive(EndpointId, const net::Payload& message) {
  if (const auto* reply = message.get_if<proto::Reply>()) {
    handle_reply(*reply);
    return;
  }
  if (const auto* announce = message.get_if<proto::Announce>()) {
    handle_announce(*announce);
    return;
  }
}

void PassiveReplicationHandler::handle_reply(const proto::Reply& reply) {
  auto it = pending_.find(reply.request);
  if (it == pending_.end()) return;
  PendingRequest& pending = it->second;
  PassiveReply out;
  out.request = reply.request;
  out.primary = reply.replica;
  out.result = reply.result;
  out.response_time = simulator_.now() - pending.t0;
  out.failovers = pending.failovers;
  ReplyCallback cb = std::move(pending.on_reply);
  pending_.erase(it);
  cb(out);
}

void PassiveReplicationHandler::handle_announce(const proto::Announce& announce) {
  auto [it, inserted] = replica_endpoints_.try_emplace(announce.replica, announce.endpoint);
  if (!inserted && it->second == announce.endpoint) return;
  if (!inserted) {
    endpoint_replicas_.erase(it->second);
    it->second = announce.endpoint;
  }
  endpoint_replicas_[announce.endpoint] = announce.replica;
  lan_.unicast(endpoint_, announce.endpoint,
               net::Payload::make(proto::Subscribe{client_, endpoint_}, proto::kSubscribeBytes));
  parked_dispatch_.cancel();
  parked_dispatch_ = simulator_.schedule_after(config_.discovery_settle, [this] {
    std::vector<RequestId> parked;
    for (const auto& [id, pending] : pending_) {
      if (!pending.sent) parked.push_back(id);
    }
    for (RequestId id : parked) {
      auto it = pending_.find(id);
      if (it != pending_.end() && !it->second.sent) send_to_primary(id, it->second);
    }
  });
}

void PassiveReplicationHandler::on_view_change(std::span<const EndpointId> departed) {
  bool primary_lost = false;
  for (EndpointId gone : departed) {
    auto it = endpoint_replicas_.find(gone);
    if (it == endpoint_replicas_.end()) continue;
    const ReplicaId dead = it->second;
    if (primary() == dead) primary_lost = true;
    replica_endpoints_.erase(dead);
    endpoint_replicas_.erase(it);
    // Any request in flight to the dead replica fails over to the new
    // primary.
    for (auto& [id, pending] : pending_) {
      if (pending.sent && pending.sent_to == dead) {
        ++pending.failovers;
        ++failovers_;
        AQUA_LOG_DEBUG << "passive handler: failing request " << id.value()
                       << " over after primary crash";
        send_to_primary(id, pending);
      }
    }
  }
  (void)primary_lost;
}

}  // namespace aqua::gateway
