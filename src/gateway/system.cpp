#include "gateway/system.h"

#include "common/assert.h"

namespace aqua::gateway {

AquaSystem::AquaSystem(SystemConfig config)
    : config_(config), root_rng_(config.seed) {
  lan_ = std::make_unique<net::Lan>(simulator_, root_rng_.fork("lan"), config_.lan);
  if (config_.telemetry != nullptr) lan_->set_telemetry(config_.telemetry);
}

net::MulticastGroup& AquaSystem::service(const std::string& name) {
  auto it = services_.find(name);
  if (it == services_.end()) {
    it = services_
             .emplace(name, std::make_unique<net::MulticastGroup>(
                                simulator_, *lan_, group_ids_.next(), config_.group))
             .first;
  }
  return *it->second;
}

replica::ReplicaServer& AquaSystem::add_replica(replica::ServiceModelPtr service_model,
                                                replica::ReplicaConfig config) {
  return add_replica_on(host_ids_.next(), std::move(service_model), std::move(config));
}

replica::ReplicaServer& AquaSystem::add_replica_on(HostId host,
                                                   replica::ServiceModelPtr service_model,
                                                   replica::ReplicaConfig config) {
  if (config.telemetry == nullptr) config.telemetry = config_.telemetry;
  const ReplicaId id = replica_ids_.next();
  replicas_.push_back(std::make_unique<replica::ReplicaServer>(
      simulator_, *lan_, service(kDefaultService), id, host, std::move(service_model),
      root_rng_.fork("replica").fork(id.value()), std::move(config)));
  return *replicas_.back();
}

replica::ReplicaServer& AquaSystem::add_service_replica(const std::string& service_name,
                                                        replica::ServiceModelPtr service_model,
                                                        replica::ReplicaConfig config) {
  if (config.telemetry == nullptr) config.telemetry = config_.telemetry;
  const ReplicaId id = replica_ids_.next();
  replicas_.push_back(std::make_unique<replica::ReplicaServer>(
      simulator_, *lan_, service(service_name), id, host_ids_.next(), std::move(service_model),
      root_rng_.fork("replica").fork(id.value()), std::move(config)));
  return *replicas_.back();
}

ClientApp& AquaSystem::add_client(core::QosSpec qos, ClientWorkload workload,
                                  HandlerConfig config, core::PolicyPtr policy) {
  return add_service_client(kDefaultService, qos, std::move(workload), std::move(config),
                            std::move(policy));
}

ClientApp& AquaSystem::add_service_client(const std::string& service_name, core::QosSpec qos,
                                          ClientWorkload workload, HandlerConfig config,
                                          core::PolicyPtr policy) {
  if (config.telemetry == nullptr) config.telemetry = config_.telemetry;
  const ClientId id = client_ids_.next();
  const HostId host = host_ids_.next();
  Client client;
  client.service = service_name;
  client.handler = std::make_unique<TimingFaultHandler>(
      simulator_, *lan_, service(service_name), id, host, qos,
      root_rng_.fork("handler").fork(id.value()), std::move(config), std::move(policy));
  client.app = std::make_unique<ClientApp>(simulator_, *client.handler, std::move(workload),
                                           root_rng_.fork("client").fork(id.value()));
  client.app->start();
  clients_.push_back(std::move(client));
  return *clients_.back().app;
}

manager::DependabilityManager& AquaSystem::enable_dependability_manager(
    manager::ManagerConfig config, replica::ServiceModelPtr replacement_model,
    replica::ReplicaConfig replica_config) {
  AQUA_REQUIRE(manager_ == nullptr, "dependability manager already enabled");
  if (config.telemetry == nullptr) config.telemetry = config_.telemetry;
  manager_ = std::make_unique<manager::DependabilityManager>(
      simulator_, *lan_,
      [this, replacement_model = std::move(replacement_model),
       replica_config = std::move(replica_config)] {
        manager_->register_replica(add_replica(replacement_model, replica_config));
        return true;
      },
      config);
  for (const auto& replica : replicas_) manager_->register_replica(*replica);
  return *manager_;
}

std::vector<replica::ReplicaServer*> AquaSystem::replicas() {
  std::vector<replica::ReplicaServer*> out;
  out.reserve(replicas_.size());
  for (auto& r : replicas_) out.push_back(r.get());
  return out;
}

std::vector<ClientApp*> AquaSystem::clients() {
  std::vector<ClientApp*> out;
  out.reserve(clients_.size());
  for (auto& c : clients_) out.push_back(c.app.get());
  return out;
}

bool AquaSystem::run_until_clients_done(Duration max_time, Duration poll) {
  const TimePoint limit = simulator_.now() + max_time;
  while (simulator_.now() < limit) {
    bool all_done = true;
    for (const Client& client : clients_) {
      if (!client.app->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return true;
    simulator_.run_for(std::min(poll, limit - simulator_.now()));
  }
  for (const Client& client : clients_) {
    if (!client.app->done()) return false;
  }
  return true;
}

std::vector<trace::ClientRunReport> AquaSystem::reports() const {
  std::vector<trace::ClientRunReport> out;
  out.reserve(clients_.size());
  for (const Client& client : clients_) out.push_back(client.app->report());
  return out;
}

}  // namespace aqua::gateway
