// One-call assembly of a simulated AQuA deployment.
//
// AquaSystem owns the simulator, the LAN, one multicast group per
// replicated service, and every replica/client added to it — mirroring
// the paper's testbed: a set of machines on a LAN, one replica or client
// per machine (hosts can be shared on request). A client gateway talking
// to several services holds one timing fault handler per service ("a
// client that is communicating with multiple servers would have multiple
// handlers loaded in its gateway", §5.2); here each handler is a separate
// client entry bound to its service's group. Examples and benches build
// experiments from this facade instead of wiring the substrates by hand.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gateway/client_app.h"
#include "gateway/timing_fault_handler.h"
#include "manager/dependability_manager.h"
#include "net/group.h"
#include "net/lan.h"
#include "replica/replica_server.h"
#include "sim/simulator.h"
#include "trace/report.h"

namespace aqua::obs {
class Telemetry;
}  // namespace aqua::obs

namespace aqua::gateway {

struct SystemConfig {
  std::uint64_t seed = 1;
  net::LanConfig lan;
  net::GroupConfig group;

  /// Optional telemetry hub (non-owning; must outlive the system). When
  /// set it is attached to the LAN and becomes the default for every
  /// replica and client added later (a config passed to add_* with its
  /// own telemetry pointer wins). Null disables all instrumentation.
  obs::Telemetry* telemetry = nullptr;
};

/// Name of the service used by the single-service convenience overloads.
inline const std::string kDefaultService = "service";

class AquaSystem {
 public:
  explicit AquaSystem(SystemConfig config = {});

  AquaSystem(const AquaSystem&) = delete;
  AquaSystem& operator=(const AquaSystem&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::Lan& lan() { return *lan_; }

  /// The default service's multicast group.
  [[nodiscard]] net::MulticastGroup& group() { return service(kDefaultService); }

  /// The multicast group of a named service (created on first use).
  [[nodiscard]] net::MulticastGroup& service(const std::string& name);

  /// Add a replica of the default service on its own fresh host (the
  /// paper's layout). Returns a stable reference owned by the system.
  replica::ReplicaServer& add_replica(replica::ServiceModelPtr service_model,
                                      replica::ReplicaConfig config = {});

  /// Add a replica of a named service.
  replica::ReplicaServer& add_service_replica(const std::string& service_name,
                                              replica::ServiceModelPtr service_model,
                                              replica::ReplicaConfig config = {});

  /// Add a replica of the default service on an explicit host ("a machine
  /// may host multiple replicas", §3).
  replica::ReplicaServer& add_replica_on(HostId host, replica::ServiceModelPtr service_model,
                                         replica::ReplicaConfig config = {});

  /// Allocate a host id without placing anything on it yet.
  HostId new_host() { return host_ids_.next(); }

  struct Client {
    std::unique_ptr<TimingFaultHandler> handler;
    std::unique_ptr<ClientApp> app;
    std::string service;
  };

  /// Add a client (handler + workload app) of the default service on its
  /// own host. The app is started immediately; its first request fires at
  /// workload.start_delay.
  ClientApp& add_client(core::QosSpec qos, ClientWorkload workload, HandlerConfig config = {},
                        core::PolicyPtr policy = nullptr);

  /// Add a client of a named service.
  ClientApp& add_service_client(const std::string& service_name, core::QosSpec qos,
                                ClientWorkload workload, HandlerConfig config = {},
                                core::PolicyPtr policy = nullptr);

  [[nodiscard]] std::vector<replica::ReplicaServer*> replicas();
  [[nodiscard]] std::vector<ClientApp*> clients();

  /// Attach a Proteus-style dependability manager that keeps the default
  /// service at `config.min_replicas` by starting fresh replicas (with
  /// `replacement_model`) on new hosts after crashes.
  manager::DependabilityManager& enable_dependability_manager(
      manager::ManagerConfig config, replica::ServiceModelPtr replacement_model,
      replica::ReplicaConfig replica_config = {});

  /// Run for a fixed span of simulated time.
  void run_for(Duration duration) { simulator_.run_for(duration); }

  /// Run until every client app has finished its workload, checking every
  /// `poll`, giving up at `max_time`. Returns true if all finished.
  bool run_until_clients_done(Duration max_time, Duration poll = sec(1));

  /// Reports for all clients, in creation order.
  [[nodiscard]] std::vector<trace::ClientRunReport> reports() const;

 private:
  SystemConfig config_;
  Rng root_rng_;
  sim::Simulator simulator_;
  std::unique_ptr<net::Lan> lan_;
  std::map<std::string, std::unique_ptr<net::MulticastGroup>> services_;
  IdGenerator<HostId> host_ids_;
  IdGenerator<ReplicaId> replica_ids_;
  IdGenerator<ClientId> client_ids_;
  IdGenerator<GroupId> group_ids_;
  std::vector<std::unique_ptr<replica::ReplicaServer>> replicas_;
  std::vector<Client> clients_;
  std::unique_ptr<manager::DependabilityManager> manager_;
};

}  // namespace aqua::gateway
