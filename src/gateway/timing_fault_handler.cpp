#include "gateway/timing_fault_handler.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/log.h"
#include "obs/telemetry.h"

namespace aqua::gateway {

Duration OverheadModel::selection_cost(std::size_t replicas, std::size_t window) const {
  return selection_cost(replicas, /*cached=*/0, window);
}

Duration OverheadModel::selection_cost(std::size_t convolved, std::size_t cached,
                                       std::size_t window) const {
  const double atoms = static_cast<double>(convolved) * static_cast<double>(window) *
                       static_cast<double>(window);
  const auto convolution_us = static_cast<std::int64_t>(std::llround(atoms * per_atom_ns / 1000.0));
  return base + per_replica * static_cast<std::int64_t>(convolved + cached) +
         per_cached_replica * static_cast<std::int64_t>(cached) + Duration{convolution_us};
}

TimingFaultHandler::TimingFaultHandler(sim::Simulator& simulator, net::Lan& lan,
                                       net::MulticastGroup& group, ClientId client, HostId host,
                                       core::QosSpec qos, Rng rng, HandlerConfig config,
                                       core::PolicyPtr policy)
    : simulator_(simulator),
      lan_(lan),
      group_(group),
      client_(client),
      qos_(qos),
      rng_(std::move(rng)),
      config_(std::move(config)),
      model_cache_(std::make_shared<core::ModelCache>()),
      dispatch_model_(config_.model, model_cache_),
      policy_(policy ? std::move(policy)
                     : core::make_dynamic_policy(config_.selection, config_.model, model_cache_)),
      repository_(config_.repository),
      tracker_(config_.failure_tracker),
      obs_(config_.telemetry) {
  qos_.validate();
  if (obs_ != nullptr) {
    auto& metrics = obs_->metrics();
    requests_counter_ = &metrics.counter("gateway.requests");
    probes_counter_ = &metrics.counter("gateway.probes");
    replies_counter_ = &metrics.counter("gateway.replies");
    timely_counter_ = &metrics.counter("gateway.timely");
    timing_failures_counter_ = &metrics.counter("gateway.timing_failures");
    redispatches_counter_ = &metrics.counter("gateway.redispatches");
    hedges_counter_ = &metrics.counter("gateway.hedges_fired");
    cancels_counter_ = &metrics.counter("gateway.cancels");
    qos_violations_counter_ = &metrics.counter("gateway.qos_violations");
    replicas_evicted_counter_ = &metrics.counter("gateway.replicas_evicted");
    td_clamped_counter_ = &metrics.counter("gateway.td_clamped");
    response_time_histogram_ = &metrics.histogram("gateway.response_time_us");
    selection_delta_histogram_ = &metrics.histogram("gateway.selection_delta_us");
    // The select.* counters ride on the policy decorator; the cache and
    // repository mirror their own counters from here on.
    policy_ = core::make_observed_policy(std::move(policy_), obs_);
    model_cache_->set_telemetry(obs_);
    repository_.set_telemetry(obs_);
    if (obs_->spans_enabled()) span_sink_ = obs_;
  }
  endpoint_ = lan_.create_endpoint(
      host, [this](EndpointId from, const net::Payload& m) { on_receive(from, m); });
  group_.join(endpoint_);
  group_.on_view_change(endpoint_, [this](const net::View& view,
                                          std::span<const EndpointId> departed) {
    on_view_change(view, departed);
  });
  // Ask the replicas already in the group for performance updates; each
  // responds with an Announce that populates the directory.
  group_.broadcast(endpoint_,
                   net::Payload::make(proto::Subscribe{client_, endpoint_}, proto::kSubscribeBytes));
  if (config_.probe_staleness > Duration::zero()) {
    const Duration period = std::max(msec(1), config_.probe_staleness / 2);
    probe_task_.start(simulator_, period, period, [this] { probe_stale_replicas(); });
  }
}

void TimingFaultHandler::probe_stale_replicas() {
  const TimePoint now = simulator_.now();
  for (const auto& [replica, endpoint] : replica_endpoints_) {
    if (!repository_.contains(replica)) continue;
    const core::ReplicaObservation obs = repository_.observe(replica);
    if (now - obs.last_update <= config_.probe_staleness) continue;
    // Skip replicas that already have an outstanding probe or request:
    // O(1) via the maintained per-replica count (previously an
    // O(pending x awaiting) scan per replica per tick).
    if (outstanding_requests(replica) == 0) send_probe(replica);
  }
}

void TimingFaultHandler::set_awaiting(PendingRequest& pending, std::vector<ReplicaId> replicas) {
  for (ReplicaId replica : pending.awaiting) drop_outstanding(replica, 1);
  for (ReplicaId replica : replicas) {
    ++outstanding_[replica];
    // Client-side concurrency compensation: charge the copy against the
    // replica's repository record until its next perf sample. A pure
    // counter bump — no rng, no events, no generation change — so the
    // default (load-score-off) config stays bit-identical.
    repository_.note_dispatch(replica);
  }
  pending.awaiting = std::move(replicas);
}

void TimingFaultHandler::add_awaiting(PendingRequest& pending,
                                      std::span<const ReplicaId> replicas) {
  for (ReplicaId replica : replicas) {
    if (std::find(pending.awaiting.begin(), pending.awaiting.end(), replica) !=
        pending.awaiting.end()) {
      continue;
    }
    ++outstanding_[replica];
    repository_.note_dispatch(replica);
    pending.awaiting.push_back(replica);
  }
}

void TimingFaultHandler::remove_awaiting(PendingRequest& pending, ReplicaId replica) {
  const std::size_t erased = std::erase(pending.awaiting, replica);
  if (erased > 0) drop_outstanding(replica, erased);
}

void TimingFaultHandler::erase_pending(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  for (ReplicaId replica : it->second.awaiting) drop_outstanding(replica, 1);
  pending_.erase(it);
}

void TimingFaultHandler::drop_outstanding(ReplicaId replica, std::size_t count) {
  auto it = outstanding_.find(replica);
  if (it == outstanding_.end()) return;
  it->second -= std::min(it->second, count);
  if (it->second == 0) outstanding_.erase(it);
}

void TimingFaultHandler::send_probe(ReplicaId replica) {
  auto eit = replica_endpoints_.find(replica);
  if (eit == replica_endpoints_.end()) return;
  const RequestId id = request_ids_.next();
  const TimePoint now = simulator_.now();

  history_.push_back(RequestRecord{});
  RequestRecord& record = history_.back();
  record.request = id;
  record.intercepted_at = now;
  record.transmitted_at = now;
  record.qos = qos_;
  record.probe = true;
  record.redundancy = 1;

  PendingRequest pending;
  pending.record_index = history_.size() - 1;
  pending.t0 = now;
  pending.t1 = now;
  pending.qos = qos_;
  pending.method = core::kDefaultMethod;  // matches the wire request below
  pending.is_probe = true;
  pending.dispatched = true;
  pending.trace_id = obs::make_trace_id(client_, id);
  set_awaiting(pending, {replica});
  auto pit = pending_.emplace(id, std::move(pending)).first;
  simulator_.schedule_at(now + qos_.deadline * 10, [this, id] { erase_pending(id); });

  ++probes_sent_;
  if (probes_counter_ != nullptr) probes_counter_->add();
  if (obs_ != nullptr) {
    obs_->record_alert({.kind = obs::AlertKind::kReplicaStale,
                        .at = now,
                        .client = client_,
                        .replica = replica,
                        .observed = 0.0,
                        .threshold = static_cast<double>(count_us(config_.probe_staleness)),
                        .detail = "probe sent"});
  }
  AQUA_LOG_DEBUG << "handler " << client_.value() << ": probing stale replica "
                 << replica.value();
  proto::Request request{id, client_, core::kDefaultMethod, 0};
  net::Payload payload = net::Payload::make(request, proto::kRequestBytes);
  if (span_sink_ != nullptr) {
    PendingRequest& p = pit->second;
    p.root_span = span_sink_->next_span_id();
    payload.set_span({.trace_id = p.trace_id,
                      .parent_span_id = p.root_span,
                      .leg = obs::SpanKind::kRequestLeg,
                      .replica = {}});
  }
  const std::vector<EndpointId> target{eit->second};
  group_.send(endpoint_, target, std::move(payload));
}

RequestId TimingFaultHandler::invoke(std::int64_t argument, ReplyCallback on_reply,
                                     const std::string& method) {
  AQUA_REQUIRE(on_reply != nullptr, "reply callback must be callable");
  const RequestId id = request_ids_.next();
  const TimePoint t0 = simulator_.now();
  if (requests_counter_ != nullptr) requests_counter_->add();

  history_.push_back(RequestRecord{});
  RequestRecord& record = history_.back();
  record.request = id;
  record.intercepted_at = t0;
  record.qos = qos_;

  PendingRequest pending;
  pending.record_index = history_.size() - 1;
  pending.t0 = t0;
  pending.qos = qos_;
  pending.method = method;
  pending.argument = argument;
  pending.on_reply = std::move(on_reply);
  pending.trace_id = obs::make_trace_id(client_, id);

  // §5.4.2: a timing failure occurs if no timely response arrives; the
  // timer also covers the case where no response arrives at all (all
  // selected replicas crashed).
  pending.deadline_timer = simulator_.schedule_at(t0 + qos_.deadline, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    if (!it->second.outcome_recorded) record_outcome(it->second, /*timely=*/false);
    finish_if_complete(id);
  });

  auto [it, inserted] = pending_.emplace(id, std::move(pending));
  AQUA_ASSERT(inserted);

  // Final GC: with message loss or undetected crashes a request may never
  // collect all its replies; reclaim its state well after the deadline.
  simulator_.schedule_at(t0 + qos_.deadline * 10, [this, id] { erase_pending(id); });

  // The interception + marshalling stage elapses before the scheduler
  // runs the selection.
  simulator_.schedule_after(config_.overhead.interception, [this, id] {
    auto pit = pending_.find(id);
    if (pit == pending_.end()) return;
    dispatch(id, pit->second, /*redispatch=*/false);
  });
  return id;
}

void TimingFaultHandler::dispatch(RequestId id, PendingRequest& pending, bool redispatch) {
  // Observe with the clock so silence (and thus the liveness guess and
  // the adaptive-trim live filter) is populated.
  const auto observations = repository_.observe_all(pending.method, simulator_.now());
  RequestRecord& record = history_[pending.record_index];
  if (observations.empty()) {
    // No replicas discovered yet (the Announce handshake is still in
    // flight). handle_announce() re-dispatches as soon as one appears; if
    // none ever does, the deadline timer records the failure.
    AQUA_LOG_DEBUG << "handler " << client_.value() << ": no replicas known for request "
                   << id.value() << "; waiting for membership";
    return;
  }
  pending.dispatched = true;

  // §5.3.3: select with the most recently measured delta, then measure the
  // cost of this execution for the next one.
  const Duration delta_used = overhead_.current();
  const core::ModelCacheStats cache_before = model_cache_->stats();
  const core::SelectionResult selection =
      policy_->select(observations, pending.qos, delta_used, rng_);
  AQUA_ASSERT(!selection.selected.empty());

  std::size_t with_data = 0;
  for (const auto& obs : observations) {
    if (obs.has_data()) ++with_data;
  }
  // Charge convolution cost only for the replicas the model actually
  // re-convolved; cache hits pay the cheap lookup cost. A policy that
  // bypasses the cache (custom PolicyPtr) leaves the counters untouched
  // and is charged the full uncached estimate as before.
  std::size_t convolved = with_data;
  std::size_t cached = 0;
  const core::ModelCacheStats& cache_after = model_cache_->stats();
  if (cache_after.hits + cache_after.misses > cache_before.hits + cache_before.misses) {
    cached = static_cast<std::size_t>(
        std::min<std::uint64_t>(cache_after.hits - cache_before.hits, with_data));
    convolved = with_data - cached;
  }
  Duration selection_cost =
      config_.overhead.selection_cost(convolved, cached, repository_.window_size());

  // Repository bootstrap: replicas with no recorded history yet ride
  // along on every request (whatever the policy chose) so their windows
  // fill — the handler-level analogue of the paper's proposed active
  // probes for replicas with missing/obsolete data (§8).
  std::vector<ReplicaId> selected = selection.selected;
  if (config_.selection.include_dataless && !selection.cold_start) {
    for (const auto& obs : observations) {
      if (!obs.has_data() &&
          std::find(selected.begin(), selected.end(), obs.id) == selected.end()) {
        selected.push_back(obs.id);
      }
    }
  }

  // Split K into the transmission schedule. The default config takes the
  // identity branch: no model evaluation, no plan object that could
  // disturb the paper-policy path (fig4/fig5 stay bit-identical).
  core::DispatchPlan plan;
  if (config_.dispatch.is_default()) {
    plan.primary = selected;
  } else {
    core::SelectionResult merged = selection;
    merged.selected = selected;
    plan = core::plan_dispatch(config_.dispatch, merged, observations, pending.qos,
                               dispatch_model_);
  }

  // Arm the completion predicate at the first non-default plan. The arm
  // is once-only: a redispatch keeps the original spec and its collected
  // chunks (rateless MDS — the fresh copies below carry new indices, so
  // everything already received still counts toward k). Coded dispatches
  // tag their generation with the request id; uncoded ones (including
  // quorum) leave it at the wire default of zero.
  if (!plan.completion.is_default() && !pending.collector.armed()) {
    pending.collector.arm(plan.completion, plan.coded ? id.value() : 0);
    pending.code_k = plan.code_k;
  }
  // MDS encoding + per-copy marshalling replaces the shared multicast
  // marshalling; charge it into the same delta the compensation path
  // feeds back (§5.3.3). Zero for every uncoded dispatch.
  if (pending.code_k > 0) {
    selection_cost += config_.overhead.per_chunk *
                      static_cast<std::int64_t>(plan.primary.size() + plan.hedge.size());
  }
  overhead_.record(config_.overhead.interception + selection_cost);
  if (selection_delta_histogram_ != nullptr) {
    selection_delta_histogram_->record(config_.overhead.interception + selection_cost);
    if (redispatch) redispatches_counter_->add();
  }

  pending.hedge_timer.cancel();  // a redispatch supersedes any armed hedge
  pending.hedge_set = plan.hedge;
  set_awaiting(pending, plan.primary);
  record.redundancy = plan.primary.size() + plan.hedge.size();
  record.hedged = plan.hedged;
  record.code_k = pending.code_k;
  record.cold_start = selection.cold_start;
  record.feasible = selection.feasible;
  record.predicted_probability = selection.predicted_probability;
  record.redispatched = redispatch;

  if (obs_ != nullptr && !selection.feasible && !selection.cold_start && !pending.is_probe) {
    obs_->record_alert({.kind = obs::AlertKind::kInfeasibleSelection,
                        .at = simulator_.now(),
                        .client = client_,
                        .replica = {},
                        .observed = selection.predicted_probability,
                        .threshold = pending.qos.min_probability,
                        .detail = "fallback redundancy " + std::to_string(selected.size())});
  }

  // Selection explainability record: every replica as Algorithm 1 saw
  // it, plus the achieved-vs-requested probability and the cache split.
  if (obs_ != nullptr && obs_->selection_traces_enabled()) {
    obs::SelectionTrace trace;
    trace.client = client_;
    trace.request = id;
    trace.at = simulator_.now();
    trace.redispatch = redispatch;
    trace.deadline = pending.qos.deadline;
    trace.requested_probability = pending.qos.min_probability;
    trace.overhead_delta = delta_used;
    trace.cold_start = selection.cold_start;
    trace.feasible = selection.feasible;
    trace.fallback_to_all =
        !selection.feasible && !selection.cold_start &&
        config_.selection.infeasible_fallback == core::InfeasibleFallback::kAllReplicas;
    trace.protected_count = selection.protected_count;
    trace.test_probability = selection.test_probability;
    trace.predicted_probability = selection.predicted_probability;
    trace.redundancy = selected.size();
    trace.cache_hits = cache_after.hits - cache_before.hits;
    trace.cache_misses = cache_after.misses - cache_before.misses;
    trace.replicas.reserve(observations.size());
    for (std::size_t i = 0; i < selection.ranked.size(); ++i) {
      const core::RankedReplica& ranked = selection.ranked[i];
      obs::SelectionReplicaTrace row;
      row.replica = ranked.id;
      row.rank = i;
      row.probability = ranked.probability;
      row.has_data = ranked.has_data;
      row.selected =
          std::find(selected.begin(), selected.end(), ranked.id) != selected.end();
      row.protected_member = i < selection.protected_count;
      trace.replicas.push_back(row);
    }
    // Dataless replicas never enter the ranking; list the selected ones
    // after it so the dispatched set K is fully accounted for.
    for (ReplicaId id_selected : selected) {
      const bool ranked_member =
          std::any_of(selection.ranked.begin(), selection.ranked.end(),
                      [id_selected](const core::RankedReplica& r) { return r.id == id_selected; });
      if (ranked_member) continue;
      obs::SelectionReplicaTrace row;
      row.replica = id_selected;
      row.rank = trace.replicas.size();
      row.selected = true;
      trace.replicas.push_back(row);
    }
    obs_->record_selection(std::move(trace));
  }

  // Coded dispatch: assign one fresh chunk index per primary copy now,
  // in selection order, so the transmission below is a pure send.
  std::vector<std::uint32_t> chunks;
  if (pending.code_k > 0) {
    chunks.reserve(plan.primary.size());
    for (std::size_t i = 0; i < plan.primary.size(); ++i) chunks.push_back(pending.next_chunk++);
  }

  // The selection computation itself elapses before transmission (t1).
  // The dispatch span covers interception + selection for a first
  // dispatch (t0 -> t1) and the re-selection alone for a redispatch.
  const TimePoint dispatch_start = redispatch ? simulator_.now() : pending.t0;
  const bool hedged = plan.hedged;
  const Duration hedge_delay = plan.hedge_delay;
  simulator_.schedule_after(selection_cost, [this, id, dispatch_start, hedged, hedge_delay,
                                             selected = std::move(plan.primary),
                                             chunks = std::move(chunks)] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingRequest& p = it->second;
    std::vector<EndpointId> targets;
    targets.reserve(selected.size());
    std::vector<std::uint32_t> target_chunks;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (auto eit = replica_endpoints_.find(selected[i]); eit != replica_endpoints_.end()) {
        targets.push_back(eit->second);
        if (!chunks.empty()) target_chunks.push_back(chunks[i]);
      }
    }
    p.t1 = simulator_.now();
    history_[p.record_index].transmitted_at = p.t1;
    proto::Request request{id, client_, p.method, p.argument};
    net::Payload payload = net::Payload::make(request, proto::kRequestBytes);
    obs::SpanContext leg_span{};
    if (span_sink_ != nullptr) {
      if (p.root_span == 0) p.root_span = span_sink_->next_span_id();
      const std::uint64_t dispatch_span = span_sink_->next_span_id();
      span_sink_->record_span({.trace_id = p.trace_id,
                               .span_id = dispatch_span,
                               .parent_span_id = p.root_span,
                               .kind = obs::SpanKind::kDispatch,
                               .client = client_,
                               .request = id,
                               .replica = {},
                               .start = dispatch_start,
                               .end = p.t1});
      leg_span = {.trace_id = p.trace_id,
                  .parent_span_id = dispatch_span,
                  .leg = obs::SpanKind::kRequestLeg,
                  .replica = {}};
      payload.set_span(leg_span);
    }
    if (target_chunks.empty()) {
      // Uncoded: one multicast payload shared by the whole set — the
      // paper's transmission exactly.
      group_.send(endpoint_, targets, std::move(payload));
    } else {
      // Coded: each member receives its own chunk-request. Same t1, same
      // dispatch span; only the body's chunk index differs per copy.
      for (std::size_t i = 0; i < targets.size(); ++i) {
        proto::Request chunk_request = request;
        chunk_request.chunk = target_chunks[i];
        chunk_request.code_k = p.code_k;
        chunk_request.code_id = p.collector.code_id();
        net::Payload chunk_payload = net::Payload::make(chunk_request, proto::kRequestBytes);
        if (span_sink_ != nullptr) chunk_payload.set_span(leg_span);
        group_.send(endpoint_, std::span<const EndpointId>(&targets[i], 1),
                    std::move(chunk_payload));
      }
    }
    if (hedged && !p.delivered && !p.hedge_set.empty()) {
      // The hedge delay runs from t1: the pmf quantile it was derived
      // from predicts the primary's response measured from transmission.
      p.hedge_timer = simulator_.schedule_after(hedge_delay, [this, id] { fire_hedge(id); });
    }
  });
}

void TimingFaultHandler::fire_hedge(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingRequest& pending = it->second;
  if (pending.delivered || pending.hedge_set.empty()) return;

  std::vector<ReplicaId> hedge = std::move(pending.hedge_set);
  pending.hedge_set.clear();
  std::vector<EndpointId> targets;
  targets.reserve(hedge.size());
  for (ReplicaId replica : hedge) {
    if (auto eit = replica_endpoints_.find(replica); eit != replica_endpoints_.end()) {
      targets.push_back(eit->second);
    }
  }
  if (targets.empty()) return;

  add_awaiting(pending, hedge);
  ++hedges_fired_;
  history_[pending.record_index].hedge_fired = true;
  if (hedges_counter_ != nullptr) hedges_counter_->add();
  AQUA_LOG_DEBUG << "handler " << client_.value() << ": hedging request " << id.value() << " to "
                 << targets.size() << " backup replica(s)";

  proto::Request request{id, client_, pending.method, pending.argument};
  net::Payload payload = net::Payload::make(request, proto::kRequestBytes);
  obs::SpanContext leg_span{};
  if (span_sink_ != nullptr) {
    if (pending.root_span == 0) pending.root_span = span_sink_->next_span_id();
    leg_span = {.trace_id = pending.trace_id,
                .parent_span_id = pending.root_span,
                .leg = obs::SpanKind::kRequestLeg,
                .replica = {}};
    payload.set_span(leg_span);
  }
  if (pending.code_k == 0) {
    group_.send(endpoint_, targets, std::move(payload));
    return;
  }
  // Coded hedge: the held-back copies get fresh chunk indices at fire
  // time — rateless, so they add information no matter which primary
  // chunks already arrived.
  for (const EndpointId target : targets) {
    proto::Request chunk_request = request;
    chunk_request.chunk = pending.next_chunk++;
    chunk_request.code_k = pending.code_k;
    chunk_request.code_id = pending.collector.code_id();
    net::Payload chunk_payload = net::Payload::make(chunk_request, proto::kRequestBytes);
    if (span_sink_ != nullptr) chunk_payload.set_span(leg_span);
    group_.send(endpoint_, std::span<const EndpointId>(&target, 1), std::move(chunk_payload));
  }
}

void TimingFaultHandler::send_cancels(RequestId id, PendingRequest& pending) {
  if (pending.awaiting.empty()) return;
  std::vector<EndpointId> targets;
  targets.reserve(pending.awaiting.size());
  for (ReplicaId replica : pending.awaiting) {
    if (auto eit = replica_endpoints_.find(replica); eit != replica_endpoints_.end()) {
      targets.push_back(eit->second);
    }
  }
  // Stop awaiting the cancelled members either way: a purged copy never
  // replies, and one already in service replies into the late-reply
  // harvest path (repository update without pending state).
  set_awaiting(pending, {});
  if (targets.empty()) return;
  cancels_sent_ += targets.size();
  history_[pending.record_index].cancels_sent += targets.size();
  if (cancels_counter_ != nullptr) cancels_counter_->add(targets.size());
  group_.send(endpoint_, targets,
              net::Payload::make(proto::Cancel{id, client_, pending.method},
                                 proto::kCancelBytes));
}

void TimingFaultHandler::on_receive(EndpointId, const net::Payload& message) {
  if (const auto* reply = message.get_if<proto::Reply>()) {
    handle_reply(*reply);
    return;
  }
  if (const auto* update = message.get_if<proto::PerfUpdate>()) {
    handle_perf_update(*update);
    return;
  }
  if (const auto* announce = message.get_if<proto::Announce>()) {
    handle_announce(*announce);
    return;
  }
  // Subscribe broadcasts from sibling clients land here too; ignore them.
}

void TimingFaultHandler::handle_reply(const proto::Reply& reply) {
  const TimePoint t4 = simulator_.now();
  if (replies_counter_ != nullptr) replies_counter_->add();
  const core::PerfSample sample{reply.perf.service_time, reply.perf.queuing_delay,
                                reply.perf.queue_length, reply.perf.sample_seq};
  // Every reply, first or redundant, refreshes the repository (§5.4.1).
  if (replica_endpoints_.contains(reply.replica)) {
    repository_.record_perf(reply.replica, sample, t4, reply.method);
  }

  auto it = pending_.find(reply.request);
  if (it == pending_.end()) return;  // very late reply; history window moved on
  PendingRequest& pending = it->second;

  // t_d = t4 - t1 - t_q - t_s: the two-way gateway-to-gateway delay.
  // Negative raw values mean the clock bases disagree (or t1 was reset by
  // a redispatch after this copy left); the clamp keeps the model sane
  // but the count must be visible, not silent — a runtime with a real
  // basis mismatch would otherwise just look optimistically close.
  const Duration td_raw = t4 - pending.t1 - reply.perf.queuing_delay - reply.perf.service_time;
  if (td_raw < Duration::zero()) {
    ++td_clamped_;
    if (td_clamped_counter_ != nullptr) td_clamped_counter_->add();
  }
  const Duration td = std::max(Duration::zero(), td_raw);
  if (replica_endpoints_.contains(reply.replica)) {
    repository_.record_gateway_delay(reply.replica, td, t4, reply.perf.sample_seq);
  }

  remove_awaiting(pending, reply.replica);

  // The completion predicate decides delivery. Unarmed (the default
  // path, and probes) the collector is first-of-n with the wire-default
  // generation tag, so `completed` is exactly the old `!delivered` gate:
  // true for reply #1, false for every redundant one. Armed k-of-n
  // completes at the k-th distinct chunk; quorum at the k-th distinct
  // replica. Stale generations and duplicate chunks never complete.
  const bool completed = pending.collector.record(reply.replica, reply.chunk, reply.code_id);
  if (pending.collector.armed()) {
    history_[pending.record_index].chunks_received = pending.collector.distinct();
  }

  if (completed) {
    pending.delivered = true;
    const Duration tr = t4 - pending.t0;  // t_r = t4 - t0
    const bool timely = tr <= pending.qos.deadline;
    RequestRecord& record = history_[pending.record_index];
    record.response_time = tr;
    // Stash the completing reply's perf triple for the telemetry trace
    // before the outcome is recorded (emit_request_trace reads it).
    pending.t4 = t4;
    pending.first_service = reply.perf.service_time;
    pending.first_queuing = reply.perf.queuing_delay;
    pending.first_gateway = td;
    pending.first_replica = reply.replica;
    // Completion beat the hedge timer: the backups are never sent.
    pending.hedge_timer.cancel();
    pending.hedge_set.clear();
    if (config_.dispatch.cancel_on_first_reply && !pending.is_probe) {
      // For coded dispatch this fires at the k-th distinct chunk — the
      // earliest moment the remaining copies become provably redundant.
      send_cancels(reply.request, pending);
    }
    if (response_time_histogram_ != nullptr && !pending.is_probe) {
      response_time_histogram_->record(tr);
    }
    if (span_sink_ != nullptr) {
      if (pending.root_span == 0) pending.root_span = span_sink_->next_span_id();
      // A first reply that beats the deadline closes the wait-for-first-
      // reply merge (t1 -> t4); one that arrives after the outcome was
      // decided closes the late-reply harvest window instead.
      const bool late = pending.outcome_recorded && !pending.is_probe;
      span_sink_->record_span({.trace_id = pending.trace_id,
                               .span_id = span_sink_->next_span_id(),
                               .parent_span_id = pending.root_span,
                               .kind = late ? obs::SpanKind::kLateReply
                                            : obs::SpanKind::kFirstReply,
                               .client = client_,
                               .request = reply.request,
                               .replica = reply.replica,
                               .start = late ? pending.t0 + pending.qos.deadline : pending.t1,
                               .end = t4,
                               .ok = late ? false : timely});
    }
    if (!pending.outcome_recorded && !pending.is_probe) {
      pending.deadline_timer.cancel();
      record_outcome(pending, timely);
    } else if (obs_ != nullptr) {
      if (pending.is_probe) {
        // Probes never pass through record_outcome; trace them on reply
        // and close their root span here.
        emit_request_trace(pending, timely);
        if (span_sink_ != nullptr) {
          span_sink_->record_span({.trace_id = pending.trace_id,
                                   .span_id = pending.root_span,
                                   .parent_span_id = 0,
                                   .kind = obs::SpanKind::kRequest,
                                   .client = client_,
                                   .request = reply.request,
                                   .replica = reply.replica,
                                   .start = pending.t0,
                                   .end = t4,
                                   .ok = timely});
        }
      } else if (pending.trace_recorded) {
        // Late first reply: the deadline already decided the outcome and
        // emitted the trace — amend it in place, exactly like
        // RequestRecord::response_time above.
        obs_->amend_request(pending.trace_seq, t4, tr, reply.replica,
                            reply.perf.service_time, reply.perf.queuing_delay, td);
      }
    }
    ReplyInfo info{reply.request, reply.replica, reply.result, tr, timely};
    if (pending.on_reply) pending.on_reply(info);
  }
  finish_if_complete(reply.request);
}

void TimingFaultHandler::handle_perf_update(const proto::PerfUpdate& update) {
  if (!replica_endpoints_.contains(update.replica)) return;  // not in the current view
  const core::PerfSample sample{update.perf.service_time, update.perf.queuing_delay,
                                update.perf.queue_length, update.perf.sample_seq};
  repository_.record_perf(update.replica, sample, simulator_.now(), update.method);
}

void TimingFaultHandler::handle_announce(const proto::Announce& announce) {
  auto [it, inserted] = replica_endpoints_.try_emplace(announce.replica, announce.endpoint);
  if (!inserted && it->second == announce.endpoint) return;
  if (!inserted) {
    // The replica restarted with a new endpoint.
    endpoint_replicas_.erase(it->second);
    it->second = announce.endpoint;
  }
  endpoint_replicas_[announce.endpoint] = announce.replica;
  repository_.add_replica(announce.replica);
  // Make sure the replica pushes its performance updates to us.
  lan_.unicast(endpoint_, announce.endpoint,
               net::Payload::make(proto::Subscribe{client_, endpoint_}, proto::kSubscribeBytes));
  // Requests intercepted before any replica was known are still parked;
  // dispatch them once the Announce burst settles (each new announce
  // pushes the settle point, so the cold-start selection sees the whole
  // burst rather than whichever announce happened to arrive first).
  parked_dispatch_.cancel();
  parked_dispatch_ = simulator_.schedule_after(config_.discovery_settle, [this] {
    std::vector<RequestId> parked;
    for (const auto& [id, pending] : pending_) {
      if (!pending.dispatched && !pending.delivered) parked.push_back(id);
    }
    for (RequestId id : parked) {
      auto pit = pending_.find(id);
      if (pit != pending_.end() && !pit->second.dispatched) {
        dispatch(id, pit->second, /*redispatch=*/false);
      }
    }
  });
}

void TimingFaultHandler::on_view_change(const net::View&, std::span<const EndpointId> departed) {
  std::vector<ReplicaId> dead;
  for (EndpointId endpoint : departed) {
    auto it = endpoint_replicas_.find(endpoint);
    if (it == endpoint_replicas_.end()) continue;  // a client left, not a replica
    dead.push_back(it->second);
    repository_.remove_replica(it->second);
    model_cache_->invalidate(it->second);
    replica_endpoints_.erase(it->second);
    endpoint_replicas_.erase(it);
  }
  if (dead.empty()) return;
  if (replicas_evicted_counter_ != nullptr) {
    replicas_evicted_counter_->add(dead.size());
    obs_->annotate(simulator_.now(), "view_change",
                   "client-" + std::to_string(client_.value()) + " evicted " +
                       std::to_string(dead.size()) + " replica(s)");
  }
  if (obs_ != nullptr) {
    for (ReplicaId replica : dead) {
      obs_->record_alert({.kind = obs::AlertKind::kReplicaEvicted,
                          .at = simulator_.now(),
                          .client = client_,
                          .replica = replica,
                          .observed = static_cast<double>(dead.size()),
                          .threshold = 0.0,
                          .detail = "view change"});
    }
  }

  std::vector<RequestId> to_redispatch;
  std::vector<RequestId> to_hedge;
  std::vector<RequestId> dead_probes;
  for (auto& [id, pending] : pending_) {
    for (ReplicaId replica : dead) {
      remove_awaiting(pending, replica);
      std::erase(pending.hedge_set, replica);
    }
    if (pending.delivered) continue;
    // Completion-aware satisfiability: chunks already collected plus
    // copies still in flight plus the held hedge set must be able to
    // reach the predicate's k. For the default first-of-n this reduces
    // to the old "someone is still awaited" test exactly. The k−1-then-
    // crash stall falls through here: awaiting drained below k distinct
    // chunks means the request can never complete on its own — release
    // the hedge set if that closes the gap, otherwise reselect.
    const std::size_t reachable =
        pending.collector.distinct() + pending.awaiting.size() + pending.hedge_set.size();
    if (!pending.awaiting.empty() && reachable >= pending.collector.required()) continue;
    if (pending.is_probe) {
      // A probe's only target crashed. Re-running selection for it would
      // turn a repository refresh into a phantom client request (wrong
      // method, no reply callback, |K|-wide multicast) — and it kept the
      // probe registered in outstanding_ long past any use. Drop it; the
      // staleness scan re-probes whoever needs it.
      dead_probes.push_back(id);
    } else if (!pending.hedge_set.empty() && reachable >= pending.collector.required()) {
      // The primary crashed while backups were still held behind the
      // hedge timer: release them now instead of re-running selection.
      to_hedge.push_back(id);
    } else if (config_.redispatch_on_view_change) {
      to_redispatch.push_back(id);
    }
  }
  for (RequestId id : dead_probes) erase_pending(id);
  for (RequestId id : to_hedge) {
    AQUA_LOG_DEBUG << "handler " << client_.value() << ": releasing hedge set of request "
                   << id.value() << " after primary crash";
    fire_hedge(id);
  }
  for (RequestId id : to_redispatch) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    AQUA_LOG_DEBUG << "handler " << client_.value() << ": redispatching request " << id.value()
                   << " after replica crash";
    dispatch(id, it->second, /*redispatch=*/true);
  }
}

void TimingFaultHandler::record_outcome(PendingRequest& pending, bool timely) {
  AQUA_ASSERT(!pending.outcome_recorded);
  pending.outcome_recorded = true;
  history_[pending.record_index].timely = timely;
  tracker_.record(timely);
  if (timely_counter_ != nullptr) {
    (timely ? timely_counter_ : timing_failures_counter_)->add();
  }
  if (obs_ != nullptr) {
    emit_request_trace(pending, timely);
    // Calibration before the violation check below: on the sample that
    // trips both detectors, the drift alert lands first in the ring.
    obs_->record_calibration(simulator_.now(), client_,
                             pending.delivered ? pending.first_replica : ReplicaId{},
                             history_[pending.record_index].predicted_probability, timely);
  }
  if (span_sink_ != nullptr) {
    // Close the root span at decision time — min(first reply, deadline).
    // Requests whose replicas all crashed close here too (via the
    // deadline timer), so the span ring never holds a dangling root.
    if (pending.root_span == 0) pending.root_span = span_sink_->next_span_id();
    span_sink_->record_span({.trace_id = pending.trace_id,
                             .span_id = pending.root_span,
                             .parent_span_id = 0,
                             .kind = obs::SpanKind::kRequest,
                             .client = client_,
                             .request = history_[pending.record_index].request,
                             .replica = pending.first_replica,
                             .start = pending.t0,
                             .end = simulator_.now(),
                             .ok = timely});
  }
  const bool violating = tracker_.violates(pending.qos.min_probability);
  if (violating && !violation_reported_) {
    violation_reported_ = true;
    if (qos_violations_counter_ != nullptr) {
      qos_violations_counter_->add();
      obs_->annotate(simulator_.now(), "qos_violation",
                     "client-" + std::to_string(client_.value()));
    }
    if (obs_ != nullptr) {
      obs_->record_alert({.kind = obs::AlertKind::kQosViolation,
                          .at = simulator_.now(),
                          .client = client_,
                          .replica = {},
                          .observed = tracker_.timely_fraction(),
                          .threshold = pending.qos.min_probability,
                          .detail = "timely fraction below requested minimum"});
    }
    if (on_violation_) on_violation_(tracker_.timely_fraction());
  } else if (!violating) {
    if (violation_reported_ && obs_ != nullptr) {
      obs_->record_alert({.kind = obs::AlertKind::kQosRecovered,
                          .at = simulator_.now(),
                          .client = client_,
                          .replica = {},
                          .observed = tracker_.timely_fraction(),
                          .threshold = pending.qos.min_probability,
                          .detail = "timely fraction recovered"});
    }
    violation_reported_ = false;  // re-arm after recovery
  }
}

/// Build the request lifecycle trace from the history record + pending
/// state. Called exactly once per decided request: from record_outcome
/// for client requests (at min(first reply, deadline)) and from
/// handle_reply for answered probes.
void TimingFaultHandler::emit_request_trace(PendingRequest& pending, bool timely) {
  const RequestRecord& record = history_[pending.record_index];
  obs::RequestTrace trace;
  trace.client = client_;
  trace.request = record.request;
  trace.probe = pending.is_probe;
  trace.t0 = record.intercepted_at;
  trace.t1 = record.transmitted_at;
  trace.deadline = pending.qos.deadline;
  trace.min_probability = pending.qos.min_probability;
  trace.predicted_probability = record.predicted_probability;
  trace.redundancy = record.redundancy;
  trace.cold_start = record.cold_start;
  trace.feasible = record.feasible;
  trace.redispatched = record.redispatched;
  trace.timely = timely;
  if (pending.delivered) {
    trace.answered = true;
    trace.t4 = pending.t4;
    trace.response_time = record.response_time;
    trace.service_time = pending.first_service;
    trace.queuing_delay = pending.first_queuing;
    trace.gateway_delay = pending.first_gateway;
    trace.first_replica = pending.first_replica;
  }
  pending.trace_seq = obs_->record_request(std::move(trace));
  pending.trace_recorded = true;
}

void TimingFaultHandler::finish_if_complete(RequestId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  const PendingRequest& pending = it->second;
  if (pending.awaiting.empty() && (pending.outcome_recorded || pending.is_probe)) {
    pending_.erase(it);
  }
}

void TimingFaultHandler::set_qos(core::QosSpec qos) {
  qos.validate();
  qos_ = qos;
  tracker_.reset();
  violation_reported_ = false;
  if (obs_ != nullptr) {
    obs_->record_alert({.kind = obs::AlertKind::kQosRenegotiated,
                        .at = simulator_.now(),
                        .client = client_,
                        .replica = {},
                        .observed = static_cast<double>(count_us(qos_.deadline)),
                        .threshold = qos_.min_probability,
                        .detail = "qos renegotiated"});
  }
}

}  // namespace aqua::gateway
