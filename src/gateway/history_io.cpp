#include "gateway/history_io.h"

#include "trace/csv.h"

namespace aqua::gateway {

std::size_t write_history_csv(std::ostream& out, std::span<const RequestRecord> history) {
  trace::CsvWriter csv{out};
  csv.header({"request", "t0_ms", "t1_ms", "deadline_ms", "min_probability", "redundancy",
              "cold_start", "feasible", "predicted_probability", "redispatched", "probe",
              "response_ms", "timely"});
  for (const RequestRecord& r : history) {
    csv.row({trace::CsvWriter::cell(r.request.value()),
             trace::CsvWriter::cell(static_cast<double>(count_us(r.intercepted_at)) / 1000.0, 3),
             trace::CsvWriter::cell(static_cast<double>(count_us(r.transmitted_at)) / 1000.0, 3),
             trace::CsvWriter::cell(to_ms(r.qos.deadline), 3),
             trace::CsvWriter::cell(r.qos.min_probability, 3),
             trace::CsvWriter::cell(static_cast<std::uint64_t>(r.redundancy)),
             r.cold_start ? "1" : "0", r.feasible ? "1" : "0",
             trace::CsvWriter::cell(r.predicted_probability, 4), r.redispatched ? "1" : "0",
             r.probe ? "1" : "0",
             r.response_time ? trace::CsvWriter::cell(to_ms(*r.response_time), 3) : "",
             r.timely ? "1" : "0"});
  }
  return csv.rows_written();
}

}  // namespace aqua::gateway
