#!/usr/bin/env bash
# Standard pre-PR gate: build the Release config and a TSan config, run the
# tier-1 test suite in Release, and run the labeled tiers in both:
#  - ctest -L fault: the chaos tier (ISSUE 2 acceptance: same script on the
#    threaded runtime with zero reported races);
#  - ctest -L obs: the telemetry tier (ISSUE 3 acceptance: registry,
#    counters, and trace rings race-free under ThreadSanitizer).
# The telemetry-overhead gate then fails the run if a disabled hub makes
# the selection hot path measurably slower than no hub at all.
#
# Usage: tools/run_checks.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

step() { printf '\n==== %s ====\n' "$*"; }

step "Configure + build: Release (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "${JOBS}"

step "Tier-1 ctest (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}"

step "Chaos tier: ctest -L fault (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}" -L fault

step "Telemetry tier: ctest -L obs (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}" -L obs

step "Telemetry-overhead gate: disabled hub within 2% of bare hot path"
build/bench/selection_hot_path --check-telemetry-overhead

step "Configure + build: ThreadSanitizer (build-tsan/)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DENABLE_TSAN=ON >/dev/null
cmake --build build-tsan -j "${JOBS}"

step "Chaos tier: ctest -L fault (TSan)"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L fault

step "Telemetry tier: ctest -L obs (TSan)"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L obs

step "All checks passed"
