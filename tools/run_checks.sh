#!/usr/bin/env bash
# Standard pre-PR gate: build the Release config and a TSan config, run the
# tier-1 test suite in Release, and run the labeled tiers in both:
#  - ctest -L fault: the chaos tier (ISSUE 2 acceptance: same script on the
#    threaded runtime with zero reported races);
#  - ctest -L obs: the telemetry tier (ISSUE 3 acceptance: registry,
#    counters, and trace rings race-free under ThreadSanitizer).
# The telemetry-overhead gate then fails the run if a disabled hub makes
# the selection hot path measurably slower than no hub at all. After the
# gates, observability acceptance checks run (ISSUE 4): machine-readable
# bench JSON artifacts, byte-identical Perfetto export across same-seed
# runs, and a live /metrics scrape against a threaded run. The
# calibration gates cover the prediction-calibration layer: a disabled
# tracker must stay within 2% of the bare outcome path, the scripted
# service-shift scenario must raise the drift alert deterministically
# before the QoS violation, calibration_report must emit
# BENCH_calibration.json (quiet on stationary runs), and /calibration
# must serve the live tracker. The fleet gates cover cross-process
# observability: bench/fleet_report must stitch >=95% of answered traces
# with conserved merged counters, and a real gateway + 2-replica process
# fleet over loopback UDP must yield at least one fully-stitched trace
# whose merged counters equal the sum of the per-node /metrics totals.
#
# Usage: tools/run_checks.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Stamp bench JSON artifacts with the commit they measured, and collect
# them next to the bench binaries rather than in the source tree.
AQUA_BENCH_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export AQUA_BENCH_COMMIT
export AQUA_BENCH_JSON_DIR="build/bench"

step() { printf '\n==== %s ====\n' "$*"; }

step "Configure + build: Release (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "${JOBS}"

step "Tier-1 ctest (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}"

step "Chaos tier: ctest -L fault (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}" -L fault

step "Telemetry tier: ctest -L obs (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}" -L obs

step "Telemetry-overhead gate: disabled hub within 2% of bare hot path"
build/bench/selection_hot_path --check-telemetry-overhead
test -s build/bench/BENCH_selection.json
grep -q '"commit":' build/bench/BENCH_selection.json

step "Calibration-overhead gate: disabled tracker within 2% of bare outcome path"
build/bench/selection_hot_path --check-calibration-overhead
grep -q '"metric":"calibration_disabled_overhead"' build/bench/BENCH_selection.json

step "Drift determinism: scripted service shift trips calibration before QoS"
ctest --test-dir build --output-on-failure -R 'CalibrationDrift'

step "Bench JSON: calibration report emits BENCH_calibration.json"
build/bench/calibration_report >/dev/null
test -s build/bench/BENCH_calibration.json
grep -q '"metric":"shifted_drift_alarms"' build/bench/BENCH_calibration.json
grep -q '"metric":"stationary_drift_alarms","value":0\b' build/bench/BENCH_calibration.json

step "Bench JSON: fig5 sweep emits BENCH_fig5.json"
AQUA_BENCH_SEEDS=1 build/bench/fig5_timing_failures >/dev/null
test -s build/bench/BENCH_fig5.json
grep -q '"metric":' build/bench/BENCH_fig5.json

step "Bench JSON: transport round-trip emits BENCH_transport.json"
build/bench/transport_roundtrip >/dev/null
test -s build/bench/BENCH_transport.json
grep -q '"metric":"udp_rtt_us"' build/bench/BENCH_transport.json

step "Bench JSON: hedging crossover emits BENCH_hedging.json"
AQUA_BENCH_SEEDS=1 build/bench/hedging_crossover >/dev/null
test -s build/bench/BENCH_hedging.json
grep -q '"metric":"low_load.hedged.replica_savings_vs_multicast"' \
  build/bench/BENCH_hedging.json
grep -q '"metric":"high_load.cancel.replica_savings_vs_multicast"' \
  build/bench/BENCH_hedging.json

step "Bench JSON: coded vs replicated emits BENCH_coded.json (identity gate)"
AQUA_BENCH_SEEDS=1 build/bench/coded_vs_replicated >/dev/null
test -s build/bench/BENCH_coded.json
grep -q '"metric":"mid_load.coded.replica_ms_per_request"' build/bench/BENCH_coded.json
grep -q '"metric":"high_load.coded_informed.replica_savings_vs_replicated"' \
  build/bench/BENCH_coded.json
# first_of_n must stay bit-identical to the paper policy on fig4/fig5.
grep -q '"metric":"fig.first_of_n_identity","value":1\b' build/bench/BENCH_coded.json
# The herd-safe gates: a DISABLED load score (garbage knobs) must also be
# bit-identical to the paper policy, and the load-compensated informed
# placement must no longer lose to blind spreading at high load.
grep -q '"metric":"fig.load_score_off_identity","value":1\b' build/bench/BENCH_coded.json
grep -q '"metric":"high_load.informed_beats_blind","value":1\b' build/bench/BENCH_coded.json

step "Bench JSON: selection oscillation emits BENCH_oscillation.json (herding gate)"
AQUA_BENCH_SEEDS=1 build/bench/selection_oscillation >/dev/null
test -s build/bench/BENCH_oscillation.json
# The load score must damp multi-gateway queue oscillation without
# giving back timeliness.
grep -q '"metric":"oscillation.amplitude_reduced","value":1\b' \
  build/bench/BENCH_oscillation.json
grep -q '"metric":"oscillation.timely_no_worse","value":1\b' \
  build/bench/BENCH_oscillation.json

step "UDP smoke: two-process gateway/replica run over loopback"
ctest --test-dir build --output-on-failure -R udp_two_process_smoke

step "Golden Perfetto: same seed => byte-identical trace JSON"
GOLD_DIR="$(mktemp -d)"
trap 'rm -rf "${GOLD_DIR}"' EXIT
build/tools/aqua_experiment --seed 4242 --requests 20 --replicas 5 \
  --perfetto "${GOLD_DIR}/a.json" >/dev/null
build/tools/aqua_experiment --seed 4242 --requests 20 --replicas 5 \
  --perfetto "${GOLD_DIR}/b.json" >/dev/null
cmp "${GOLD_DIR}/a.json" "${GOLD_DIR}/b.json"

step "Scrape smoke test: live /metrics during a threaded run"
SCRAPE_PORT=19317
build/tools/aqua_experiment --threaded --requests 40 --think 50 --deadline 60 \
  --replicas 3 --clients 2 --scrape-port "${SCRAPE_PORT}" --serve-seconds 2 \
  >"${GOLD_DIR}/threaded.log" &
EXPERIMENT_PID=$!
SCRAPE_BODY=""
for _ in $(seq 1 40); do
  if SCRAPE_BODY="$(exec 3<>"/dev/tcp/127.0.0.1/${SCRAPE_PORT}" &&
      printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3 && exec 3<&-)"; then
    [ -n "${SCRAPE_BODY}" ] && break
  fi
  sleep 0.25
done
wait "${EXPERIMENT_PID}"
printf '%s\n' "${SCRAPE_BODY}" | grep -q '200 OK'
printf '%s\n' "${SCRAPE_BODY}" | grep -q '^# TYPE aqua_'

step "Calibration scrape: /calibration serves the tracker after a sim run"
build/tools/aqua_experiment --seed 7 --requests 30 --replicas 4 \
  --scrape-port "${SCRAPE_PORT}" --serve-seconds 2 \
  >"${GOLD_DIR}/calibration.log" &
EXPERIMENT_PID=$!
CAL_BODY=""
for _ in $(seq 1 40); do
  if CAL_BODY="$(exec 3<>"/dev/tcp/127.0.0.1/${SCRAPE_PORT}" &&
      printf 'GET /calibration HTTP/1.0\r\n\r\n' >&3 && cat <&3 && exec 3<&-)"; then
    [ -n "${CAL_BODY}" ] && break
  fi
  sleep 0.25
done
wait "${EXPERIMENT_PID}"
printf '%s\n' "${CAL_BODY}" | grep -q '200 OK'
printf '%s\n' "${CAL_BODY}" | grep -q '"enabled":true'
printf '%s\n' "${CAL_BODY}" | grep -q '"drift":'

step "Bench JSON: fleet report emits BENCH_fleet.json (stitch + conservation gate)"
build/bench/fleet_report >/dev/null
test -s build/bench/BENCH_fleet.json
grep -q '"metric":"stitch_completeness_pct"' build/bench/BENCH_fleet.json
grep -q '"metric":"merge_conservation","value":1\b' build/bench/BENCH_fleet.json
grep -q '"metric":"unreachable_nodes","value":0\b' build/bench/BENCH_fleet.json

step "Fleet smoke: gateway + 2 replica processes over UDP, collector stitches across them"
# Ports offset by PID like tests/udp_smoke_test.sh, so parallel runs do
# not collide.
FLEET_UDP_A=$((42000 + ($$ % 5000)))
FLEET_UDP_B=$((FLEET_UDP_A + 1))
FLEET_SCRAPE_A=$((FLEET_UDP_A + 2))
FLEET_SCRAPE_B=$((FLEET_UDP_A + 3))
FLEET_SCRAPE_G=$((FLEET_UDP_A + 4))
build/tools/aqua_experiment --transport udp --listen "127.0.0.1:${FLEET_UDP_A}" \
  --replica-id 1 --service-mean 2 --run-seconds 30 --scrape-port "${FLEET_SCRAPE_A}" \
  >"${GOLD_DIR}/fleet_replica_a.log" &
FLEET_REPLICA_A=$!
build/tools/aqua_experiment --transport udp --listen "127.0.0.1:${FLEET_UDP_B}" \
  --replica-id 2 --service-mean 2 --run-seconds 30 --scrape-port "${FLEET_SCRAPE_B}" \
  >"${GOLD_DIR}/fleet_replica_b.log" &
FLEET_REPLICA_B=$!
trap 'rm -rf "${GOLD_DIR}"; kill "${FLEET_REPLICA_A}" "${FLEET_REPLICA_B}" 2>/dev/null || true; wait 2>/dev/null || true' EXIT
sleep 1
build/tools/aqua_experiment --transport udp \
  --peer "127.0.0.1:${FLEET_UDP_A}" --peer "127.0.0.1:${FLEET_UDP_B}" \
  --requests 40 --deadline 100 --think 1 \
  --scrape-port "${FLEET_SCRAPE_G}" --serve-seconds 10 \
  >"${GOLD_DIR}/fleet_gateway.log" &
FLEET_GATEWAY=$!
FLEET_JSON="${GOLD_DIR}/fleet.json"
STITCHED=0
for _ in $(seq 1 40); do
  build/tools/aqua_top --fleet "${FLEET_SCRAPE_G},${FLEET_SCRAPE_A},${FLEET_SCRAPE_B}" \
    --once --json "${FLEET_JSON}" >/dev/null 2>&1 || true
  STITCHED="$(grep -o '"traces_stitched":[0-9]*' "${FLEET_JSON}" 2>/dev/null |
    head -1 | cut -d: -f2 || true)"
  [ "${STITCHED:-0}" -ge 1 ] && break
  sleep 0.25
done
[ "${STITCHED:-0}" -ge 1 ] || { echo "FAIL: no fully-stitched cross-process trace"; exit 1; }
# Let the workload drain, then take the quiescent snapshot the numeric
# checks below run against.
sleep 2
build/tools/aqua_top --fleet "${FLEET_SCRAPE_G},${FLEET_SCRAPE_A},${FLEET_SCRAPE_B}" \
  --once --json "${FLEET_JSON}" >/dev/null
grep -o '"completeness":[0-9.]*' "${FLEET_JSON}" | head -1 |
  awk -F: '{exit !($2 >= 0.95)}' ||
  { echo "FAIL: stitch completeness below 0.95"; exit 1; }
# Merged fleet counter == sum of the replicas' own raw /metrics totals.
MERGED_REQUESTS="$(grep -o '"replica_endpoint.requests":[0-9]*' "${FLEET_JSON}" |
  head -1 | cut -d: -f2)"
NODE_SUM=0
for FLEET_PORT in "${FLEET_SCRAPE_A}" "${FLEET_SCRAPE_B}"; do
  NODE_BODY="$(exec 3<>"/dev/tcp/127.0.0.1/${FLEET_PORT}" &&
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3 && exec 3<&-)"
  NODE_VALUE="$(printf '%s\n' "${NODE_BODY}" |
    awk '/^aqua_replica_endpoint_requests /{print int($2)}')"
  NODE_SUM=$((NODE_SUM + NODE_VALUE))
done
[ "${MERGED_REQUESTS}" -eq "${NODE_SUM}" ] ||
  { echo "FAIL: merged replica_endpoint.requests=${MERGED_REQUESTS}, node sum=${NODE_SUM}"; exit 1; }
wait "${FLEET_GATEWAY}"
kill "${FLEET_REPLICA_A}" "${FLEET_REPLICA_B}" 2>/dev/null || true

step "Configure + build: ThreadSanitizer (build-tsan/)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DENABLE_TSAN=ON >/dev/null
cmake --build build-tsan -j "${JOBS}"

step "Chaos tier: ctest -L fault (TSan)"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L fault

step "Telemetry tier: ctest -L obs (TSan)"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L obs

step "Transport conformance + UDP runtime (TSan)"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
  -R 'SimConformance|UdpConformance|RuntimeTransportTest|UdpRegressionTest'

step "All checks passed"
