#!/usr/bin/env bash
# Standard pre-PR gate: build the Release config and a TSan config, run the
# tier-1 test suite in Release, and run the chaos tier (ctest -L fault) in
# both. The TSan fault run is the race certification for the threaded
# scenario runner (ISSUE 2 acceptance: same script on the threaded runtime
# with zero reported races).
#
# Usage: tools/run_checks.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

step() { printf '\n==== %s ====\n' "$*"; }

step "Configure + build: Release (build/)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "${JOBS}"

step "Tier-1 ctest (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}"

step "Chaos tier: ctest -L fault (Release)"
ctest --test-dir build --output-on-failure -j "${JOBS}" -L fault

step "Configure + build: ThreadSanitizer (build-tsan/)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DENABLE_TSAN=ON >/dev/null
cmake --build build-tsan -j "${JOBS}"

step "Chaos tier: ctest -L fault (TSan)"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L fault

step "All checks passed"
