// aqua_top — live terminal dashboard over AQuA scrape endpoints
// (see obs/scrape.h). Curses-free: it redraws with ANSI clear-screen,
// so it works in any terminal and degrades to plain append-only output
// with --once.
//
//   aqua_top --port 9900                  # poll 127.0.0.1:9900 every second
//   aqua_top --port 9900 --once           # one snapshot, then exit
//   aqua_top --fleet 9900,9901,9902       # fleet mode: aggregate + stitch
//   aqua_top --fleet 9900,9901 --once --json fleet.json --perfetto fleet.trace
//
// Every HTTP GET goes through obs::scrape_client with connect/read
// timeouts — a half-dead endpoint (port open, nothing served) shows up
// as "stale since Ns" instead of freezing the dashboard, which is what
// the original blocking client here used to do.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/fleet.h"
#include "obs/scrape_client.h"

namespace {

using aqua::obs::FleetCollector;
using aqua::obs::FleetEndpoint;
using aqua::obs::FleetNodeStatus;
using aqua::obs::FleetSnapshot;
using aqua::obs::HistogramBins;
using aqua::obs::ScrapeOptions;
using aqua::obs::ScrapeResult;

struct Options {
  std::string host = "127.0.0.1";
  int port = 9900;
  int interval_ms = 1000;
  bool once = false;
  std::vector<FleetEndpoint> fleet;  ///< non-empty selects fleet mode
  std::string json_path;             ///< fleet JSON report per refresh
  std::string perfetto_path;         ///< merged fleet Perfetto per refresh
};

void print_usage() {
  std::puts(
      "aqua_top — terminal dashboard for live AQuA scrape endpoints\n"
      "\n"
      "  --host H          scrape host (default 127.0.0.1)\n"
      "  --port P          scrape port (default 9900)\n"
      "  --fleet LIST      fleet mode: comma-separated [host:]port endpoints;\n"
      "                    aggregates metrics and stitches cross-process traces\n"
      "  --json FILE       (fleet) write the merged report as JSON each refresh\n"
      "  --perfetto FILE   (fleet) write the merged span set as a Chrome\n"
      "                    trace-event document each refresh\n"
      "  --interval-ms MS  refresh period (default 1000)\n"
      "  --once            print one snapshot and exit\n"
      "  --help            this text");
}

/// Scrape timeouts tuned for an interactive dashboard: a dead endpoint
/// costs at most ~1 s per refresh, not forever.
ScrapeOptions dashboard_scrape_options() {
  ScrapeOptions options;
  options.connect_timeout = aqua::msec(300);
  options.read_timeout = aqua::msec(1000);
  return options;
}

/// Timeout-aware GET; empty body on any failure (callers show staleness).
std::string http_get(const std::string& host, int port, const std::string& path) {
  const ScrapeResult result = aqua::obs::scrape_http_get(
      host, static_cast<std::uint16_t>(port), path, dashboard_scrape_options());
  return result.ok ? result.body : std::string{};
}

/// Parse Prometheus text exposition into name -> value (labels kept as
/// part of the name, e.g. `aqua_x{quantile="0.9"}`).
std::map<std::string, double> parse_metrics(const std::string& body) {
  std::map<std::string, double> metrics;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    metrics[line.substr(0, space)] = std::atof(line.c_str() + space + 1);
  }
  return metrics;
}

/// Crude but sufficient alert-line extraction: pull "kind" and "detail"
/// string fields out of the /alerts JSON array without a JSON parser.
std::vector<std::string> parse_alert_lines(const std::string& body) {
  std::vector<std::string> lines;
  const auto field = [](const std::string& obj, const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\":\"";
    const auto at = obj.find(needle);
    if (at == std::string::npos) return {};
    const auto start = at + needle.size();
    const auto end = obj.find('"', start);
    return end == std::string::npos ? std::string{} : obj.substr(start, end - start);
  };
  std::size_t pos = 0;
  while ((pos = body.find('{', pos)) != std::string::npos) {
    const auto end = body.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = body.substr(pos, end - pos + 1);
    const std::string kind = field(obj, "kind");
    if (!kind.empty()) lines.push_back(kind + ": " + field(obj, "detail"));
    pos = end + 1;
  }
  return lines;
}

/// First numeric value after `"key":` at/after `from`; NaN when absent.
/// Good enough for our own exporter's stable field order — this panel
/// deliberately carries no JSON parser.
double find_number(const std::string& body, const std::string& key, std::size_t from,
                   std::size_t* next = nullptr) {
  const std::string needle = "\"" + key + "\":";
  const auto at = body.find(needle, from);
  if (at == std::string::npos) return std::nan("");
  if (next != nullptr) *next = at + needle.size();
  return std::atof(body.c_str() + at + needle.size());
}

/// Calibration panel: reliability sparkline over the global decile bins
/// (observed timely fraction per bin, '.' where a bin is empty), the
/// worst-calibrated replica by ECE, and the freshest drift alert.
void append_calibration_panel(std::ostringstream& frame, const std::string& body,
                              const std::vector<std::string>& alerts) {
  frame << "\n  calibration: ";
  if (body.empty() || body.find("\"enabled\":true") == std::string::npos) {
    frame << "disabled\n";
    return;
  }
  const double samples = find_number(body, "samples", 0);
  const double ece = find_number(body, "ece", 0);
  const double brier = find_number(body, "brier_window_mean", 0);
  char head[96];
  std::snprintf(head, sizeof head, "%.0f samples, ece %.3f, window brier %.3f\n", samples, ece,
                brier);
  frame << head;

  // Sparkline: one glyph per global bin, height = timely fraction.
  static const char* const kLevels[] = {"▁", "▂", "▃", "▄",
                                        "▅", "▆", "▇", "█"};
  frame << "    reliability 0->1: ";
  const auto global_at = body.find("\"bins\":[");
  const auto global_end = body.find(']', global_at);
  std::size_t pos = global_at;
  while (pos != std::string::npos && pos < global_end) {
    pos = body.find('{', pos);
    if (pos == std::string::npos || pos > global_end) break;
    const double count = find_number(body, "count", pos);
    const double timely = find_number(body, "timely_fraction", pos);
    if (count <= 0.0) {
      frame << '.';
    } else {
      const int level = std::min(7, static_cast<int>(timely * 8.0));
      frame << kLevels[level < 0 ? 0 : level];
    }
    pos = body.find('}', pos);
  }
  frame << '\n';

  // Worst-calibrated replica: max stats.ece over the replicas array.
  const auto replicas_at = body.find("\"replicas\":[");
  const auto drift_at = body.find("\"drift\":");
  double worst_ece = -1.0;
  double worst_id = 0.0;
  pos = replicas_at;
  while (pos != std::string::npos && pos < drift_at) {
    std::size_t after = 0;
    const double id = find_number(body, "replica", pos, &after);
    if (std::isnan(id) || after >= drift_at) break;
    const double replica_ece = find_number(body, "ece", after);
    if (replica_ece > worst_ece) {
      worst_ece = replica_ece;
      worst_id = id;
    }
    pos = after;
  }
  if (worst_ece >= 0.0) {
    char line[96];
    std::snprintf(line, sizeof line, "    worst replica:     #%.0f (ece %.3f)\n", worst_id,
                  worst_ece);
    frame << line;
  }

  const double alarms = find_number(body, "alarms", drift_at);
  std::string last_drift = "none";
  for (const std::string& alert : alerts) {
    if (alert.rfind("calibration_drift", 0) == 0) last_drift = alert;
  }
  char drift_line[160];
  std::snprintf(drift_line, sizeof drift_line, "    drift alarms %.0f, last: %s\n", alarms,
                last_drift.c_str());
  frame << drift_line;
}

// ------------------------------------------------------- single endpoint

/// Wall-clock seconds since the last successful scrape, shared across
/// redraws so the header can show "stale since Ns" instead of freezing.
struct Staleness {
  bool ever_ok = false;
  std::chrono::steady_clock::time_point last_ok{};

  void mark(bool ok) {
    if (ok) {
      ever_ok = true;
      last_ok = std::chrono::steady_clock::now();
    }
  }
  [[nodiscard]] double seconds() const {
    if (!ever_ok) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - last_ok).count();
  }
};

void draw_single(const Options& opt, Staleness& staleness, bool clear) {
  const std::string metrics_body = http_get(opt.host, opt.port, "/metrics");
  staleness.mark(!metrics_body.empty());
  const std::string alerts_body =
      metrics_body.empty() ? std::string{} : http_get(opt.host, opt.port, "/alerts");
  const std::string calibration_body =
      metrics_body.empty() ? std::string{} : http_get(opt.host, opt.port, "/calibration");
  std::ostringstream frame;
  frame << "aqua_top — " << opt.host << ':' << opt.port << "\n\n";
  if (metrics_body.empty()) {
    if (staleness.ever_ok) {
      char line[96];
      std::snprintf(line, sizeof line, "  scrape endpoint unreachable — stale since %.0fs\n",
                    staleness.seconds());
      frame << line;
    } else {
      frame << "  scrape endpoint unreachable\n";
    }
  } else {
    const auto metrics = parse_metrics(metrics_body);
    frame << "  metrics (" << metrics.size() << "):\n";
    for (const auto& [name, value] : metrics) {
      frame << "    " << name;
      for (std::size_t pad = name.size(); pad < 52; ++pad) frame << ' ';
      char cell[32];
      std::snprintf(cell, sizeof cell, "%14.3f", value);
      frame << cell << '\n';
    }
    const auto alerts = parse_alert_lines(alerts_body);
    frame << "\n  alerts (" << alerts.size() << "):\n";
    const std::size_t shown = alerts.size() > 10 ? alerts.size() - 10 : 0;
    for (std::size_t i = shown; i < alerts.size(); ++i) frame << "    " << alerts[i] << '\n';
    append_calibration_panel(frame, calibration_body, alerts);
  }
  if (clear) std::fputs("\033[2J\033[H", stdout);
  std::fputs(frame.str().c_str(), stdout);
  std::fflush(stdout);
}

// --------------------------------------------------------------- fleet

void append_attribution_panel(std::ostringstream& frame, const FleetSnapshot& snapshot) {
  const aqua::obs::FleetAttribution& a = snapshot.attribution;
  char line[160];
  std::snprintf(line, sizeof line,
                "  traces: %llu total, %llu answered, %llu stitched (%.1f%% complete)\n",
                static_cast<unsigned long long>(snapshot.traces_total),
                static_cast<unsigned long long>(snapshot.traces_answered),
                static_cast<unsigned long long>(snapshot.traces_stitched),
                100.0 * snapshot.stitch_completeness());
  frame << line;
  if (a.traces == 0) return;
  frame << "  latency attribution (end-to-end = wire + queue + service):\n";
  std::snprintf(line, sizeof line, "    %-10s %10s %10s %10s\n", "", "p50", "p99", "p999");
  frame << line;
  const auto row = [&frame, &a, &line](const char* name, const HistogramBins& leg) {
    std::snprintf(line, sizeof line,
                  "    %-10s %8lldus %8lldus %8lldus  (%2.0f%% / %2.0f%% / %2.0f%%)\n", name,
                  static_cast<long long>(leg.quantile(0.50)),
                  static_cast<long long>(leg.quantile(0.99)),
                  static_cast<long long>(leg.quantile(0.999)), 100.0 * a.share(leg, 0.50),
                  100.0 * a.share(leg, 0.99), 100.0 * a.share(leg, 0.999));
    frame << line;
  };
  std::snprintf(line, sizeof line, "    %-10s %8lldus %8lldus %8lldus\n", "end-to-end",
                static_cast<long long>(a.end_to_end.quantile(0.50)),
                static_cast<long long>(a.end_to_end.quantile(0.99)),
                static_cast<long long>(a.end_to_end.quantile(0.999)));
  frame << line;
  row("wire", a.wire);
  row("queue", a.queue);
  row("service", a.service);
}

void draw_fleet(const Options& opt, FleetCollector& collector, bool clear) {
  const FleetSnapshot snapshot = collector.collect();
  std::ostringstream frame;
  frame << "aqua_top — fleet of " << snapshot.nodes.size() << " endpoints (scrape "
        << snapshot.scrape_us / 1000 << "ms, merge " << snapshot.merge_us / 1000
        << "ms, max clock skew " << snapshot.max_abs_clock_skew_us << "us)\n\n";

  for (const FleetNodeStatus& node : snapshot.nodes) {
    char line[192];
    if (node.reachable) {
      std::snprintf(line, sizeof line,
                    "  [up]    %-22s rtt %6lldus  offset %8lldus  spans %llu (%llu dropped)\n",
                    node.endpoint.name().c_str(),
                    static_cast<long long>(node.scrape_rtt_us),
                    static_cast<long long>(node.clock_offset_us),
                    static_cast<unsigned long long>(node.data.spans_recorded),
                    static_cast<unsigned long long>(node.data.spans_dropped));
    } else if (node.has_data) {
      std::snprintf(line, sizeof line, "  [STALE] %-22s stale since %.0fs — %s\n",
                    node.endpoint.name().c_str(), node.stale_s, node.error.c_str());
    } else {
      std::snprintf(line, sizeof line, "  [down]  %-22s %s\n", node.endpoint.name().c_str(),
                    node.error.c_str());
    }
    frame << line;
    // Per-replica panel: the handful of counters that tell the server
    // side's story at a glance (absent on gateway-only hubs).
    const auto counter = [&node](const char* name) -> long long {
      const auto it = node.data.counters.find(name);
      return it == node.data.counters.end() ? -1 : static_cast<long long>(it->second);
    };
    if (const long long requests = counter("replica_endpoint.requests"); requests >= 0) {
      std::snprintf(line, sizeof line,
                    "          requests %lld, replies %lld, rejected %lld, queue %.0f\n",
                    requests, counter("replica_endpoint.replies"),
                    counter("replica_endpoint.rejected"),
                    [&node] {
                      const auto it = node.data.gauges.find("replica_endpoint.queue_length");
                      return it == node.data.gauges.end() ? 0.0 : it->second;
                    }());
      frame << line;
    }
  }
  frame << '\n';

  // Merged fleet metrics: a few headline totals, not the full registry.
  const auto total = [&snapshot](const char* name) -> long long {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : static_cast<long long>(it->second);
  };
  char line[160];
  std::snprintf(line, sizeof line,
                "  fleet totals: %lld requests, %lld timely, %lld timing failures, "
                "%lld spans dropped\n",
                total("threaded.requests"), total("threaded.timely"),
                total("threaded.timing_failures"), total("telemetry.spans_dropped"));
  frame << line;
  append_attribution_panel(frame, snapshot);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (out) {
      aqua::obs::write_fleet_json(out, snapshot);
    } else {
      frame << "  (cannot write " << opt.json_path << ")\n";
    }
  }
  if (!opt.perfetto_path.empty()) {
    std::ofstream out(opt.perfetto_path);
    if (out) {
      aqua::obs::write_fleet_perfetto_json(out, snapshot);
    } else {
      frame << "  (cannot write " << opt.perfetto_path << ")\n";
    }
  }

  if (clear) std::fputs("\033[2J\033[H", stdout);
  std::fputs(frame.str().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      return 0;
    } else if (flag == "--host") {
      opt.host = need_value();
    } else if (flag == "--port") {
      opt.port = std::atoi(need_value());
    } else if (flag == "--fleet") {
      std::string list = need_value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string spec =
            list.substr(start, comma == std::string::npos ? comma : comma - start);
        if (!spec.empty()) {
          try {
            opt.fleet.push_back(aqua::obs::parse_fleet_endpoint(spec));
          } catch (const std::exception& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag == "--json") {
      opt.json_path = need_value();
    } else if (flag == "--perfetto") {
      opt.perfetto_path = need_value();
    } else if (flag == "--interval-ms") {
      opt.interval_ms = std::atoi(need_value());
    } else if (flag == "--once") {
      opt.once = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
      return 2;
    }
  }
  if ((!opt.json_path.empty() || !opt.perfetto_path.empty()) && opt.fleet.empty()) {
    std::fprintf(stderr, "--json/--perfetto require --fleet\n");
    return 2;
  }
  if (!opt.fleet.empty()) {
    FleetCollector collector{opt.fleet, dashboard_scrape_options()};
    if (opt.once) {
      draw_fleet(opt, collector, /*clear=*/false);
      return 0;
    }
    for (;;) {
      draw_fleet(opt, collector, /*clear=*/true);
      std::this_thread::sleep_for(std::chrono::milliseconds{opt.interval_ms});
    }
  }
  Staleness staleness;
  if (opt.once) {
    draw_single(opt, staleness, /*clear=*/false);
    return 0;
  }
  for (;;) {
    draw_single(opt, staleness, /*clear=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds{opt.interval_ms});
  }
}
