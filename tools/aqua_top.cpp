// aqua_top — live terminal dashboard over a running gateway's scrape
// endpoint (see obs/scrape.h). Curses-free: it redraws with ANSI
// clear-screen, so it works in any terminal and degrades to plain
// append-only output with --once.
//
//   aqua_top --port 9900               # poll 127.0.0.1:9900 every second
//   aqua_top --port 9900 --once        # one snapshot, then exit
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 9900;
  int interval_ms = 1000;
  bool once = false;
};

void print_usage() {
  std::puts(
      "aqua_top — terminal dashboard for a live AQuA scrape endpoint\n"
      "\n"
      "  --host H          scrape host (default 127.0.0.1)\n"
      "  --port P          scrape port (default 9900)\n"
      "  --interval-ms MS  refresh period (default 1000)\n"
      "  --once            print one snapshot and exit\n"
      "  --help            this text");
}

/// One blocking HTTP/1.0 GET. Returns the response body, or an empty
/// string on any connection/protocol error (the dashboard just shows
/// "unreachable" and keeps polling).
std::string http_get(const std::string& host, int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w = ::write(fd, request.data() + sent, request.size() - sent);
    if (w <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const auto body = response.find("\r\n\r\n");
  if (body == std::string::npos || response.rfind("HTTP/1.0 200", 0) != 0) return {};
  return response.substr(body + 4);
}

/// Parse Prometheus text exposition into name -> value (labels kept as
/// part of the name, e.g. `aqua_x{quantile="0.9"}`).
std::map<std::string, double> parse_metrics(const std::string& body) {
  std::map<std::string, double> metrics;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    metrics[line.substr(0, space)] = std::atof(line.c_str() + space + 1);
  }
  return metrics;
}

/// Crude but sufficient alert-line extraction: pull "kind" and "detail"
/// string fields out of the /alerts JSON array without a JSON parser.
std::vector<std::string> parse_alert_lines(const std::string& body) {
  std::vector<std::string> lines;
  const auto field = [](const std::string& obj, const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\":\"";
    const auto at = obj.find(needle);
    if (at == std::string::npos) return {};
    const auto start = at + needle.size();
    const auto end = obj.find('"', start);
    return end == std::string::npos ? std::string{} : obj.substr(start, end - start);
  };
  std::size_t pos = 0;
  while ((pos = body.find('{', pos)) != std::string::npos) {
    const auto end = body.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = body.substr(pos, end - pos + 1);
    const std::string kind = field(obj, "kind");
    if (!kind.empty()) lines.push_back(kind + ": " + field(obj, "detail"));
    pos = end + 1;
  }
  return lines;
}

/// First numeric value after `"key":` at/after `from`; NaN when absent.
/// Good enough for our own exporter's stable field order — aqua_top
/// deliberately carries no JSON parser.
double find_number(const std::string& body, const std::string& key, std::size_t from,
                   std::size_t* next = nullptr) {
  const std::string needle = "\"" + key + "\":";
  const auto at = body.find(needle, from);
  if (at == std::string::npos) return std::nan("");
  if (next != nullptr) *next = at + needle.size();
  return std::atof(body.c_str() + at + needle.size());
}

/// Calibration panel: reliability sparkline over the global decile bins
/// (observed timely fraction per bin, '.' where a bin is empty), the
/// worst-calibrated replica by ECE, and the freshest drift alert.
void append_calibration_panel(std::ostringstream& frame, const std::string& body,
                              const std::vector<std::string>& alerts) {
  frame << "\n  calibration: ";
  if (body.empty() || body.find("\"enabled\":true") == std::string::npos) {
    frame << "disabled\n";
    return;
  }
  const double samples = find_number(body, "samples", 0);
  const double ece = find_number(body, "ece", 0);
  const double brier = find_number(body, "brier_window_mean", 0);
  char head[96];
  std::snprintf(head, sizeof head, "%.0f samples, ece %.3f, window brier %.3f\n", samples, ece,
                brier);
  frame << head;

  // Sparkline: one glyph per global bin, height = timely fraction.
  static const char* const kLevels[] = {"▁", "▂", "▃", "▄",
                                        "▅", "▆", "▇", "█"};
  frame << "    reliability 0->1: ";
  const auto global_at = body.find("\"bins\":[");
  const auto global_end = body.find(']', global_at);
  std::size_t pos = global_at;
  while (pos != std::string::npos && pos < global_end) {
    pos = body.find('{', pos);
    if (pos == std::string::npos || pos > global_end) break;
    const double count = find_number(body, "count", pos);
    const double timely = find_number(body, "timely_fraction", pos);
    if (count <= 0.0) {
      frame << '.';
    } else {
      const int level = std::min(7, static_cast<int>(timely * 8.0));
      frame << kLevels[level < 0 ? 0 : level];
    }
    pos = body.find('}', pos);
  }
  frame << '\n';

  // Worst-calibrated replica: max stats.ece over the replicas array.
  const auto replicas_at = body.find("\"replicas\":[");
  const auto drift_at = body.find("\"drift\":");
  double worst_ece = -1.0;
  double worst_id = 0.0;
  pos = replicas_at;
  while (pos != std::string::npos && pos < drift_at) {
    std::size_t after = 0;
    const double id = find_number(body, "replica", pos, &after);
    if (std::isnan(id) || after >= drift_at) break;
    const double replica_ece = find_number(body, "ece", after);
    if (replica_ece > worst_ece) {
      worst_ece = replica_ece;
      worst_id = id;
    }
    pos = after;
  }
  if (worst_ece >= 0.0) {
    char line[96];
    std::snprintf(line, sizeof line, "    worst replica:     #%.0f (ece %.3f)\n", worst_id,
                  worst_ece);
    frame << line;
  }

  const double alarms = find_number(body, "alarms", drift_at);
  std::string last_drift = "none";
  for (const std::string& alert : alerts) {
    if (alert.rfind("calibration_drift", 0) == 0) last_drift = alert;
  }
  char drift_line[160];
  std::snprintf(drift_line, sizeof drift_line, "    drift alarms %.0f, last: %s\n", alarms,
                last_drift.c_str());
  frame << drift_line;
}

void draw(const Options& opt, bool clear) {
  const std::string metrics_body = http_get(opt.host, opt.port, "/metrics");
  const std::string alerts_body = http_get(opt.host, opt.port, "/alerts");
  const std::string calibration_body = http_get(opt.host, opt.port, "/calibration");
  std::ostringstream frame;
  frame << "aqua_top — " << opt.host << ':' << opt.port << "\n\n";
  if (metrics_body.empty()) {
    frame << "  scrape endpoint unreachable\n";
  } else {
    const auto metrics = parse_metrics(metrics_body);
    frame << "  metrics (" << metrics.size() << "):\n";
    for (const auto& [name, value] : metrics) {
      frame << "    " << name;
      for (std::size_t pad = name.size(); pad < 52; ++pad) frame << ' ';
      char cell[32];
      std::snprintf(cell, sizeof cell, "%14.3f", value);
      frame << cell << '\n';
    }
    const auto alerts = parse_alert_lines(alerts_body);
    frame << "\n  alerts (" << alerts.size() << "):\n";
    const std::size_t shown = alerts.size() > 10 ? alerts.size() - 10 : 0;
    for (std::size_t i = shown; i < alerts.size(); ++i) frame << "    " << alerts[i] << '\n';
    append_calibration_panel(frame, calibration_body, alerts);
  }
  if (clear) std::fputs("\033[2J\033[H", stdout);
  std::fputs(frame.str().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      return 0;
    } else if (flag == "--host") {
      opt.host = need_value();
    } else if (flag == "--port") {
      opt.port = std::atoi(need_value());
    } else if (flag == "--interval-ms") {
      opt.interval_ms = std::atoi(need_value());
    } else if (flag == "--once") {
      opt.once = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
      return 2;
    }
  }
  if (opt.once) {
    draw(opt, /*clear=*/false);
    return 0;
  }
  for (;;) {
    draw(opt, /*clear=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds{opt.interval_ms});
  }
}
