// aqua_experiment — run a configurable AQuA-RS deployment from the
// command line and print per-client reports.
//
//   aqua_experiment --replicas 7 --deadline 150 --pc 0.9 --requests 50
//   aqua_experiment --policy fastest-mean --crash-at 5
//   aqua_experiment --service-dist pareto --clients 4 --csv run.csv
//   aqua_experiment --obs-json snapshot.json --obs-csv run --obs-flush-ms 5000
//   aqua_experiment --seed 4242 --perfetto trace.json
//   aqua_experiment --threaded --scrape-port 9900 --serve-seconds 30
//
// Every run is deterministic in (--seed, flags); every run records into
// an obs::Telemetry hub and the per-client reports are aggregated from
// its request traces (the same pipeline the figure benches consume).
// (--threaded swaps the simulator for the wall-clock runtime, so those
// runs are deterministic in structure but not in timings.)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gateway/history_io.h"
#include "gateway/system.h"
#include "net/udp_transport.h"
#include "obs/export.h"
#include "obs/flusher.h"
#include "obs/perfetto_export.h"
#include "obs/scrape.h"
#include "obs/telemetry.h"
#include "runtime/replica_endpoint.h"
#include "runtime/threaded_system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Options {
  std::uint64_t seed = 1;
  int replicas = 7;
  std::int64_t service_mean_ms = 100;
  std::int64_t service_sd_ms = 50;
  std::string service_dist = "normal";
  int clients = 1;
  std::int64_t deadline_ms = 200;
  double pc = 0.9;
  std::size_t requests = 50;
  std::int64_t think_ms = 1000;
  std::size_t window = 5;
  std::size_t crash_tolerance = 1;
  std::string policy = "dynamic";
  double crash_at_s = 0.0;  // 0 = no crash
  int crash_count = 1;
  std::size_t manager_min = 0;  // 0 = manager off
  std::int64_t manager_delay_ms = 2000;
  bool spikes = false;
  double loss = 0.0;
  std::int64_t probe_staleness_ms = 0;
  bool windowed_gateway = false;
  bool queue_shift = false;
  bool no_compensation = false;
  std::string csv_path;
  bool per_request = false;
  double run_seconds = 0.0;  // 0 = until clients done
  std::string obs_json_path;
  std::string obs_csv_prefix;
  std::int64_t obs_flush_ms = 0;  // 0 = no periodic flusher
  std::string perfetto_path;
  int scrape_port = -1;        // -1 = no scrape server
  double serve_seconds = 0.0;  // keep the scrape endpoint up after the run
  bool threaded = false;
  std::string transport = "sim";  // sim | udp
  std::string listen;             // udp replica process: [ADDR:]PORT to bind
  std::vector<std::string> peers;  // udp gateway process: replica ADDR:PORT list
  std::uint64_t replica_id = 1;    // identity of a --listen replica process
};

void print_usage() {
  std::puts(
      "aqua_experiment — configurable AQuA-RS timing-fault experiment\n"
      "\n"
      "deployment:\n"
      "  --replicas N           server replicas (default 7)\n"
      "  --service-mean MS      mean service time (default 100)\n"
      "  --service-sd MS        service spread (default 50)\n"
      "  --service-dist D       normal|exponential|uniform|pareto|bimodal (default normal)\n"
      "  --manager-min N        keep >= N replicas alive via dependability manager (0=off)\n"
      "  --manager-delay MS     replacement startup delay (default 2000)\n"
      "workload:\n"
      "  --clients N            concurrent clients (default 1)\n"
      "  --deadline MS          client deadline t (default 200)\n"
      "  --pc P                 requested probability P_c (default 0.9)\n"
      "  --requests N           requests per client, 0 = unbounded (default 50)\n"
      "  --think MS             think time between requests (default 1000)\n"
      "  --run-seconds S        run for S simulated seconds instead of until done\n"
      "algorithm:\n"
      "  --policy P             dynamic|fastest-mean|best-probability|random-K|\n"
      "                         round-robin-K|static-K|all (default dynamic)\n"
      "  --window L             sliding-window size l (default 5)\n"
      "  --crash-tolerance K    protected members, 0..n (default 1 = Algorithm 1)\n"
      "  --no-compensation      disable the F(t - delta) overhead compensation\n"
      "  --windowed-gateway     model T from a window instead of its last value\n"
      "  --queue-shift          shift F by queue_length x mean(S) (extension)\n"
      "  --probe-staleness MS   probe replicas with data older than MS (0=off)\n"
      "faults:\n"
      "  --crash-at S           crash replica host(s) at S seconds (0=off)\n"
      "  --crash-count N        how many replicas crash (default 1)\n"
      "  --spikes               enable LAN traffic spikes\n"
      "  --loss R               message loss rate in [0,1)\n"
      "output:\n"
      "  --seed S               experiment seed (default 1)\n"
      "  --per-request          dump each request of client 0\n"
      "  --csv FILE             write client 0's request history as CSV\n"
      "telemetry:\n"
      "  --obs-json FILE        write the full telemetry snapshot as JSON\n"
      "  --obs-csv PREFIX       write PREFIX.metrics.csv, PREFIX.requests.csv,\n"
      "                         PREFIX.selections.csv\n"
      "  --obs-flush-ms MS      print a metrics JSON line every MS simulated ms\n"
      "  --perfetto FILE        write the span ring as Chrome trace-event JSON\n"
      "                         (open in ui.perfetto.dev)\n"
      "  --scrape-port P        serve /metrics, /snapshot, /alerts, /calibration,\n"
      "                         /trace, /spans, /traces/<id> on 127.0.0.1:P (0 =\n"
      "                         ephemeral); in a --listen replica process, serves that\n"
      "                         replica's server-side metrics (queue length, cancel\n"
      "                         fates); in a --peer gateway process, serves the\n"
      "                         gateway hub during the run (fleet stitching input)\n"
      "  --serve-seconds S      keep the scrape endpoint up S seconds after the run\n"
      "runtime:\n"
      "  --threaded             wall-clock threaded runtime instead of the simulator\n"
      "                         (uses replicas/clients/deadline/pc/requests/think)\n"
      "  --transport T          sim|udp (default sim). udp runs the threaded runtime\n"
      "                         over real loopback UDP sockets; without --listen or\n"
      "                         --peer, gateway and replicas share this process\n"
      "  --listen [ADDR:]PORT   udp replica process: bind one replica here and serve\n"
      "                         until --run-seconds elapse (0 = until killed)\n"
      "  --replica-id N         identity of the --listen replica (default 1)\n"
      "  --peer ADDR:PORT       udp gateway process: a replica to subscribe to\n"
      "                         (repeatable; runs the workload, prints the report)\n"
      "  --help                 this text");
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      print_usage();
      return std::nullopt;
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (flag == "--replicas") {
      opt.replicas = std::atoi(need_value(i));
    } else if (flag == "--service-mean") {
      opt.service_mean_ms = std::atoll(need_value(i));
    } else if (flag == "--service-sd") {
      opt.service_sd_ms = std::atoll(need_value(i));
    } else if (flag == "--service-dist") {
      opt.service_dist = need_value(i);
    } else if (flag == "--clients") {
      opt.clients = std::atoi(need_value(i));
    } else if (flag == "--deadline") {
      opt.deadline_ms = std::atoll(need_value(i));
    } else if (flag == "--pc") {
      opt.pc = std::atof(need_value(i));
    } else if (flag == "--requests") {
      opt.requests = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (flag == "--think") {
      opt.think_ms = std::atoll(need_value(i));
    } else if (flag == "--window") {
      opt.window = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (flag == "--crash-tolerance") {
      opt.crash_tolerance = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (flag == "--policy") {
      opt.policy = need_value(i);
    } else if (flag == "--crash-at") {
      opt.crash_at_s = std::atof(need_value(i));
    } else if (flag == "--crash-count") {
      opt.crash_count = std::atoi(need_value(i));
    } else if (flag == "--manager-min") {
      opt.manager_min = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (flag == "--manager-delay") {
      opt.manager_delay_ms = std::atoll(need_value(i));
    } else if (flag == "--spikes") {
      opt.spikes = true;
    } else if (flag == "--loss") {
      opt.loss = std::atof(need_value(i));
    } else if (flag == "--probe-staleness") {
      opt.probe_staleness_ms = std::atoll(need_value(i));
    } else if (flag == "--windowed-gateway") {
      opt.windowed_gateway = true;
    } else if (flag == "--queue-shift") {
      opt.queue_shift = true;
    } else if (flag == "--no-compensation") {
      opt.no_compensation = true;
    } else if (flag == "--csv") {
      opt.csv_path = need_value(i);
    } else if (flag == "--per-request") {
      opt.per_request = true;
    } else if (flag == "--run-seconds") {
      opt.run_seconds = std::atof(need_value(i));
    } else if (flag == "--obs-json") {
      opt.obs_json_path = need_value(i);
    } else if (flag == "--obs-csv") {
      opt.obs_csv_prefix = need_value(i);
    } else if (flag == "--obs-flush-ms") {
      opt.obs_flush_ms = std::atoll(need_value(i));
    } else if (flag == "--perfetto") {
      opt.perfetto_path = need_value(i);
    } else if (flag == "--scrape-port") {
      opt.scrape_port = std::atoi(need_value(i));
    } else if (flag == "--serve-seconds") {
      opt.serve_seconds = std::atof(need_value(i));
    } else if (flag == "--threaded") {
      opt.threaded = true;
    } else if (flag == "--transport") {
      opt.transport = need_value(i);
    } else if (flag == "--listen") {
      opt.listen = need_value(i);
    } else if (flag == "--replica-id") {
      opt.replica_id = std::strtoull(need_value(i), nullptr, 10);
    } else if (flag == "--peer") {
      opt.peers.emplace_back(need_value(i));
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  return opt;
}

stats::SamplerPtr make_service_sampler(const Options& opt) {
  const Duration mean = msec(opt.service_mean_ms);
  const Duration sd = msec(opt.service_sd_ms);
  if (opt.service_dist == "normal") return stats::make_truncated_normal(mean, sd);
  if (opt.service_dist == "exponential") return stats::make_exponential(mean);
  if (opt.service_dist == "uniform") {
    const Duration lo = std::max(Duration::zero(), mean - sd);
    return stats::make_uniform(lo, mean + sd);
  }
  if (opt.service_dist == "pareto") {
    return stats::make_bounded_pareto(1.3, std::max(msec(1), mean / 4), mean * 20);
  }
  if (opt.service_dist == "bimodal") {
    return stats::make_bimodal(0.15, stats::make_truncated_normal(mean, sd / 2),
                               stats::make_truncated_normal(mean * 4, sd));
  }
  std::fprintf(stderr, "unknown --service-dist %s\n", opt.service_dist.c_str());
  std::exit(2);
}

core::PolicyPtr make_policy(const Options& opt, const core::SelectionConfig& selection,
                            const core::ModelConfig& model) {
  const std::string& p = opt.policy;
  if (p == "dynamic") return core::make_dynamic_policy(selection, model);
  if (p == "fastest-mean") return core::make_fastest_mean_policy();
  if (p == "best-probability") return core::make_best_probability_policy(model);
  if (p == "all") return core::make_all_replicas_policy();
  const auto dash = p.rfind('-');
  if (dash != std::string::npos) {
    const std::string base = p.substr(0, dash);
    const auto k = static_cast<std::size_t>(std::atoll(p.c_str() + dash + 1));
    if (k >= 1) {
      if (base == "random") return core::make_random_policy(k);
      if (base == "round-robin") return core::make_round_robin_policy(k);
      if (base == "static") return core::make_static_k_policy(k, model);
    }
  }
  std::fprintf(stderr, "unknown --policy %s\n", p.c_str());
  std::exit(2);
}

int write_perfetto_file(const Options& opt, const obs::Telemetry& telemetry) {
  if (opt.perfetto_path.empty()) return 0;
  std::ofstream out(opt.perfetto_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", opt.perfetto_path.c_str());
    return 1;
  }
  obs::write_perfetto_json(out, telemetry);
  std::printf("wrote %zu spans as perfetto trace to %s\n", telemetry.spans().size(),
              opt.perfetto_path.c_str());
  return 0;
}

void serve_remaining(const Options& opt, const obs::ScrapeServer& server) {
  std::printf("scrape endpoint live on http://127.0.0.1:%u/metrics\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (opt.serve_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds{static_cast<std::int64_t>(opt.serve_seconds * 1e3)});
  }
}

/// "[ADDR:]PORT" -> {ADDR or 127.0.0.1, PORT}. Exits on a bad port.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& spec) {
  std::string address = "127.0.0.1";
  std::string port_text = spec;
  if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
    address = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "bad address:port %s\n", spec.c_str());
    std::exit(2);
  }
  return {address, static_cast<std::uint16_t>(port)};
}

void fill_client_config(const Options& opt, runtime::ThreadedClientConfig& client) {
  client.repository.window_size = opt.window;
  client.selection.crash_tolerance = opt.crash_tolerance;
  client.selection.overhead_compensation = !opt.no_compensation;
  client.model.windowed_gateway_delay = opt.windowed_gateway;
  client.model.queue_backlog_shift = opt.queue_shift;
}

/// UDP replica process: one ThreadedReplica behind a fixed-port endpoint,
/// serving until --run-seconds elapse (0 = until killed). With
/// --scrape-port the server side gets its own Telemetry hub — queue
/// length, cancel fates, chunk demand — scrapable while it serves.
int run_udp_replica(const Options& opt) {
  const auto [address, port] = parse_host_port(opt.listen);
  net::UdpTransportConfig transport_config;
  transport_config.bind_address = address;
  net::UdpTransport transport{transport_config};

  std::unique_ptr<obs::Telemetry> telemetry;
  if (opt.scrape_port >= 0) {
    telemetry = std::make_unique<obs::Telemetry>();
    transport.set_telemetry(telemetry.get());
  }

  const stats::SamplerPtr service = make_service_sampler(opt);
  runtime::ThreadedReplica replica{ReplicaId{opt.replica_id}, service,
                                   Rng{opt.seed}.fork("replica").fork(opt.replica_id),
                                   telemetry.get()};
  runtime::ReplicaEndpoint endpoint{
      transport, replica,
      [&transport, &opt, port = port](net::ReceiveFn fn) {
        return transport.create_endpoint_on(HostId{opt.replica_id}, port, std::move(fn));
      },
      telemetry.get()};
  std::unique_ptr<obs::ScrapeServer> scrape;
  if (telemetry != nullptr) {
    scrape = std::make_unique<obs::ScrapeServer>(*telemetry,
                                                 static_cast<std::uint16_t>(opt.scrape_port));
    std::printf("replica-%llu scrape endpoint live on http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned long long>(opt.replica_id),
                static_cast<unsigned>(scrape->port()));
  }
  std::printf("replica-%llu listening on %s:%u (service=%s)\n",
              static_cast<unsigned long long>(opt.replica_id), address.c_str(),
              static_cast<unsigned>(transport.endpoint_port(endpoint.endpoint())),
              service->describe().c_str());
  std::fflush(stdout);

  if (opt.run_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds{static_cast<std::int64_t>(opt.run_seconds * 1e3)});
  } else {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds{3600});
  }
  std::printf("replica-%llu serviced %llu requests\n",
              static_cast<unsigned long long>(opt.replica_id),
              static_cast<unsigned long long>(replica.serviced()));
  return 0;
}

/// UDP gateway process: a transport-mode ThreadedClient over the --peer
/// replica processes, ending in the same to_run_report aggregation the
/// simulated runs print.
int run_udp_gateway(const Options& opt) {
  obs::Telemetry telemetry;
  net::UdpTransport transport;
  transport.set_telemetry(&telemetry);

  // With --scrape-port the gateway serves /snapshot, /spans, /metrics
  // while the workload runs (and for --serve-seconds after), so a fleet
  // collector can stitch its spans with the replica processes'.
  std::unique_ptr<obs::ScrapeServer> scrape;
  if (opt.scrape_port >= 0) {
    scrape = std::make_unique<obs::ScrapeServer>(telemetry,
                                                 static_cast<std::uint16_t>(opt.scrape_port));
    std::printf("gateway scrape endpoint live on http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(scrape->port()));
    std::fflush(stdout);
  }

  runtime::ThreadedClientConfig client_config;
  fill_client_config(opt, client_config);
  client_config.telemetry = &telemetry;
  client_config.transport = &transport;
  client_config.id = ClientId{1};
  client_config.host = HostId{1'000 + 1};
  runtime::ThreadedClient client{std::vector<runtime::ThreadedReplica*>{},
                                 core::QosSpec{msec(opt.deadline_ms), opt.pc},
                                 Rng{opt.seed}.fork("client").fork(1), client_config};
  for (const std::string& peer : opt.peers) {
    const auto [address, port] = parse_host_port(peer);
    client.subscribe_to(transport.register_peer(address, port));
  }

  // Wait for the Subscribe/Announce handshake to fill the directory; a
  // replica that never answers is simply absent (and its host reported
  // dead once the Subscribe retransmit budget runs out).
  const auto discovery_deadline = std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (client.known_replicas() < opt.peers.size() &&
         std::chrono::steady_clock::now() < discovery_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  std::printf("aqua_experiment (udp gateway) seed=%llu peers=%zu announced=%zu "
              "deadline=%lldms pc=%.2f\n",
              static_cast<unsigned long long>(opt.seed), opt.peers.size(),
              client.known_replicas(), static_cast<long long>(opt.deadline_ms), opt.pc);
  std::fflush(stdout);
  if (client.known_replicas() == 0) {
    std::fprintf(stderr, "no replica answered the subscribe handshake\n");
    return 1;
  }

  const std::size_t requests = opt.requests == 0 ? 50 : opt.requests;
  for (std::size_t i = 0; i < requests; ++i) {
    client.invoke(static_cast<std::int64_t>(i));
    std::this_thread::sleep_for(msec(opt.think_ms));
  }

  const trace::ClientRunReport report =
      obs::to_run_report(telemetry.request_traces(), ClientId{1}, "udp-gateway");
  std::printf("%s\n", report.summary_line().c_str());
  std::printf("transport: %llu sent, %llu delivered, %llu dropped, %llu retransmitted\n",
              static_cast<unsigned long long>(transport.messages_sent()),
              static_cast<unsigned long long>(transport.messages_delivered()),
              static_cast<unsigned long long>(transport.messages_dropped()),
              static_cast<unsigned long long>(transport.messages_retransmitted()));

  if (scrape != nullptr) serve_remaining(opt, *scrape);

  if (!opt.obs_json_path.empty()) {
    std::ofstream out(opt.obs_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.obs_json_path.c_str());
      return 1;
    }
    obs::write_snapshot_json(out, telemetry);
    std::printf("wrote telemetry snapshot to %s\n", opt.obs_json_path.c_str());
  }
  return write_perfetto_file(opt, telemetry);
}

int run_threaded(const Options& opt) {
  obs::Telemetry telemetry;
  // In-process --transport=udp: same assembly, but every request and
  // reply crosses real loopback sockets. Declared before the system so
  // it outlives the endpoints torn down in ~ThreadedSystem.
  std::unique_ptr<net::UdpTransport> udp;
  runtime::ThreadedSystemConfig cfg;
  cfg.seed = opt.seed;
  cfg.telemetry = &telemetry;
  cfg.scrape_port = opt.scrape_port;
  fill_client_config(opt, cfg.client);
  if (opt.transport == "udp") {
    udp = std::make_unique<net::UdpTransport>();
    udp->set_telemetry(&telemetry);
    cfg.transport = udp.get();
  }
  runtime::ThreadedSystem system{cfg};

  const stats::SamplerPtr service = make_service_sampler(opt);
  for (int i = 0; i < opt.replicas; ++i) system.add_replica(service);
  for (int c = 0; c < opt.clients; ++c) {
    system.add_client(core::QosSpec{msec(opt.deadline_ms), opt.pc});
  }

  std::printf("aqua_experiment (threaded, %s) seed=%llu replicas=%d clients=%d service=%s "
              "deadline=%lldms pc=%.2f\n",
              opt.transport == "udp" ? "udp loopback" : "direct",
              static_cast<unsigned long long>(opt.seed), opt.replicas, opt.clients,
              service->describe().c_str(), static_cast<long long>(opt.deadline_ms), opt.pc);
  if (system.scrape_server() != nullptr) {
    std::printf("scrape endpoint live on http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(system.scrape_server()->port()));
    std::fflush(stdout);
  }

  const std::size_t requests = opt.requests == 0 ? 50 : opt.requests;
  const auto stats = system.run_workload(requests, msec(opt.think_ms));
  for (std::size_t c = 0; c < stats.size(); ++c) {
    const auto& s = stats[c];
    std::printf("client-%zu: %zu requests, %zu answered, %zu timely (P_f=%.3f), "
                "mean response %.1f ms, mean redundancy %.2f, mean overhead %.1f us\n",
                c + 1, s.requests, s.answered, s.timely, s.failure_probability(),
                s.mean_response_ms, s.mean_redundancy, s.mean_selection_overhead_us);
  }

  // Keep the endpoint scrapeable after the workload so external
  // collectors (or the smoke test) can fetch the final state.
  if (system.scrape_server() != nullptr && opt.serve_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds{static_cast<std::int64_t>(opt.serve_seconds * 1e3)});
  }

  if (!opt.obs_json_path.empty()) {
    std::ofstream out(opt.obs_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.obs_json_path.c_str());
      return 1;
    }
    obs::write_snapshot_json(out, telemetry);
    std::printf("wrote telemetry snapshot to %s\n", opt.obs_json_path.c_str());
  }
  return write_perfetto_file(opt, telemetry);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 0;
  const Options& opt = *parsed;
  if (opt.replicas < 1 || opt.clients < 1) {
    std::fprintf(stderr, "need at least one replica and one client\n");
    return 2;
  }
  if (opt.transport != "sim" && opt.transport != "udp") {
    std::fprintf(stderr, "unknown --transport %s (sim|udp)\n", opt.transport.c_str());
    return 2;
  }
  if (opt.transport == "udp") {
    if (!opt.listen.empty()) return run_udp_replica(opt);
    if (!opt.peers.empty()) return run_udp_gateway(opt);
    return run_threaded(opt);
  }
  if (opt.threaded) return run_threaded(opt);

  obs::Telemetry telemetry;
  SystemConfig sys_cfg;
  sys_cfg.seed = opt.seed;
  sys_cfg.telemetry = &telemetry;
  sys_cfg.lan.loss_rate = opt.loss;
  if (opt.spikes) {
    sys_cfg.lan.spike.enabled = true;
    sys_cfg.lan.spike.mean_interval = sec(5);
    sys_cfg.lan.spike.mean_duration = msec(250);
    sys_cfg.lan.spike.delay_factor = 25.0;
  }
  AquaSystem system{sys_cfg};

  const stats::SamplerPtr service = make_service_sampler(opt);
  for (int i = 0; i < opt.replicas; ++i) {
    system.add_replica(replica::make_sampled_service(service));
  }
  if (opt.manager_min > 0) {
    manager::ManagerConfig mcfg;
    mcfg.min_replicas = opt.manager_min;
    mcfg.startup_delay = msec(opt.manager_delay_ms);
    system.enable_dependability_manager(mcfg, replica::make_sampled_service(service));
  }

  HandlerConfig handler_cfg;
  handler_cfg.repository.window_size = opt.window;
  handler_cfg.selection.crash_tolerance = opt.crash_tolerance;
  handler_cfg.selection.overhead_compensation = !opt.no_compensation;
  handler_cfg.model.windowed_gateway_delay = opt.windowed_gateway;
  handler_cfg.model.queue_backlog_shift = opt.queue_shift;
  handler_cfg.probe_staleness = msec(opt.probe_staleness_ms);

  std::vector<ClientApp*> apps;
  for (int c = 0; c < opt.clients; ++c) {
    ClientWorkload workload;
    workload.total_requests = opt.requests;
    workload.think_time = stats::make_constant(msec(opt.think_ms));
    workload.start_delay = msec(31 * c);
    apps.push_back(&system.add_client(
        core::QosSpec{msec(opt.deadline_ms), opt.pc}, workload, handler_cfg,
        make_policy(opt, handler_cfg.selection, handler_cfg.model)));
  }

  obs::SnapshotFlusher flusher;
  if (opt.obs_flush_ms > 0) {
    flusher.start_sim(system.simulator(), msec(opt.obs_flush_ms), [&telemetry](std::size_t tick) {
      std::ostringstream line;
      obs::write_metrics_json(line, telemetry);
      std::printf("obs[%zu] %s\n", tick, line.str().c_str());
    });
  }

  if (opt.crash_at_s > 0.0) {
    system.simulator().schedule_after(
        Duration{static_cast<std::int64_t>(opt.crash_at_s * 1e6)}, [&system, &opt] {
          int remaining = opt.crash_count;
          for (auto* replica : system.replicas()) {
            if (remaining == 0) break;
            if (replica->alive()) {
              replica->crash_host();
              --remaining;
            }
          }
        });
  }

  if (opt.run_seconds > 0.0) {
    system.run_for(Duration{static_cast<std::int64_t>(opt.run_seconds * 1e6)});
  } else if (opt.requests == 0) {
    system.run_for(sec(60));
  } else {
    system.run_until_clients_done(sec(3600));
  }

  std::printf("aqua_experiment seed=%llu replicas=%d service=%s policy=%s deadline=%lldms "
              "pc=%.2f window=%zu\n\n",
              static_cast<unsigned long long>(opt.seed), opt.replicas,
              service->describe().c_str(), opt.policy.c_str(),
              static_cast<long long>(opt.deadline_ms), opt.pc, opt.window);
  // Reports come from the telemetry request traces (the same aggregation
  // as ClientApp::report(); qos callbacks are app-side state the traces
  // do not carry).
  const std::vector<obs::RequestTrace> traces = telemetry.request_traces();
  for (ClientApp* app : apps) {
    const ClientId client = app->handler().client();
    trace::ClientRunReport report =
        obs::to_run_report(traces, client, "client-" + std::to_string(client.value()));
    report.qos_violation_callbacks = app->qos_violations();
    std::printf("%s; abandoned %zu, QoS callbacks %zu\n", report.summary_line().c_str(),
                app->abandoned(), app->qos_violations());
  }

  if (opt.per_request && !apps.empty()) {
    std::printf("\n%-6s %-12s %-14s %-8s\n", "req", "redundancy", "response(ms)", "timely");
    int i = 0;
    for (const RequestRecord& r : apps[0]->handler().history()) {
      if (r.probe) continue;
      std::printf("%-6d %-12zu %-14.1f %-8s\n", ++i, r.redundancy,
                  r.response_time ? to_ms(*r.response_time) : -1.0, r.timely ? "yes" : "NO");
    }
  }

  if (!opt.csv_path.empty() && !apps.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.csv_path.c_str());
      return 1;
    }
    const std::size_t rows = write_history_csv(out, apps[0]->handler().history());
    std::printf("\nwrote %zu rows to %s\n", rows, opt.csv_path.c_str());
  }

  if (!opt.obs_json_path.empty()) {
    std::ofstream out(opt.obs_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.obs_json_path.c_str());
      return 1;
    }
    obs::write_snapshot_json(out, telemetry);
    std::printf("wrote telemetry snapshot to %s\n", opt.obs_json_path.c_str());
  }
  if (!opt.obs_csv_prefix.empty()) {
    const auto write_one = [&](const char* suffix, auto&& writer) {
      const std::string path = opt.obs_csv_prefix + suffix;
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
      }
      writer(out);
      std::printf("wrote %s\n", path.c_str());
    };
    write_one(".metrics.csv", [&](std::ostream& o) { obs::write_metrics_csv(o, telemetry); });
    write_one(".requests.csv",
              [&](std::ostream& o) { obs::write_requests_csv(o, telemetry.request_traces()); });
    write_one(".selections.csv",
              [&](std::ostream& o) { obs::write_selections_csv(o, telemetry.selection_traces()); });
  }
  if (const int rc = write_perfetto_file(opt, telemetry); rc != 0) return rc;
  // Simulated runs can still expose the final state over HTTP — useful
  // for poking at a finished run with curl instead of reading files.
  if (opt.scrape_port >= 0) {
    obs::ScrapeServer server{telemetry, static_cast<std::uint16_t>(opt.scrape_port)};
    serve_remaining(opt, server);
  }
  return 0;
}
