// Handler design space (§2): the timing fault handler (this paper) vs
// AQuA's active voting handler ([16]-style majority voting, rebuilt on
// the same substrates). First-reply delivery optimises the latency tail
// but trusts every reply; majority voting masks value faults and crashes
// at the cost of waiting for the median replica.
//
// Metrics over the same fleet: response time (mean/p99), wrong results
// delivered, undecided/abandoned requests — with and without a
// value-faulty replica in the fleet.
#include <cstdio>

#include "gateway/active_voting_handler.h"
#include "gateway/passive_handler.h"
#include "gateway/system.h"
#include "stats/summary.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  stats::SampleSet response_ms;
  std::size_t requests = 0;
  std::size_t wrong = 0;
  std::size_t unanswered = 0;
};

replica::ReplicaConfig replica_config(double fault_rate) {
  replica::ReplicaConfig cfg;
  cfg.value_fault_rate = fault_rate;
  return cfg;
}

/// Timing fault handler: first reply wins; compare result against the
/// known ground truth (echo).
Outcome run_timing(double fault_rate, std::uint64_t seed) {
  SystemConfig sys_cfg;
  sys_cfg.seed = seed;
  AquaSystem system{sys_cfg};
  // One of five replicas is value-faulty (and also the fastest, worst case).
  system.add_replica(replica::make_sampled_service(
                         stats::make_truncated_normal(msec(30), msec(6))),
                     replica_config(fault_rate));
  for (int i = 0; i < 4; ++i) {
    system.add_replica(replica::make_sampled_service(
        stats::make_truncated_normal(msec(45), msec(10))));
  }

  Outcome outcome;
  auto& sim = system.simulator();
  auto handler = std::make_unique<TimingFaultHandler>(
      system.simulator(), system.lan(), system.group(), ClientId{77}, HostId{1000},
      core::QosSpec{msec(200), 0.9}, Rng{seed});
  sim.run_for(msec(50));
  for (int i = 0; i < 100; ++i) {
    bool answered = false;
    handler->invoke(i, [&outcome, &answered, i](const ReplyInfo& info) {
      answered = true;
      outcome.response_ms.add(to_ms(info.response_time));
      if (info.result != i) ++outcome.wrong;
    });
    sim.run_for(msec(400));
    ++outcome.requests;
    if (!answered) ++outcome.unanswered;
  }
  return outcome;
}

/// Active voting handler on an identical fleet.
Outcome run_voting(double fault_rate, std::uint64_t seed) {
  SystemConfig sys_cfg;
  sys_cfg.seed = seed;
  AquaSystem system{sys_cfg};
  system.add_replica(replica::make_sampled_service(
                         stats::make_truncated_normal(msec(30), msec(6))),
                     replica_config(fault_rate));
  for (int i = 0; i < 4; ++i) {
    system.add_replica(replica::make_sampled_service(
        stats::make_truncated_normal(msec(45), msec(10))));
  }

  Outcome outcome;
  auto& sim = system.simulator();
  ActiveVotingHandler handler{system.simulator(), system.lan(),   system.group(),
                              ClientId{77},       HostId{1000}, Rng{seed}};
  sim.run_for(msec(50));
  for (int i = 0; i < 100; ++i) {
    bool answered = false;
    handler.invoke(i, [&outcome, &answered, i](const VotedReply& r) {
      if (r.decided) {
        answered = true;
        outcome.response_ms.add(to_ms(r.response_time));
        if (r.result != i) ++outcome.wrong;
      }
    });
    sim.run_for(msec(400));
    ++outcome.requests;
    if (!answered) ++outcome.unanswered;
  }
  return outcome;
}

/// Passive primary/backup handler on an identical fleet.
Outcome run_passive(double fault_rate, std::uint64_t seed, bool crash_primary = false) {
  SystemConfig sys_cfg;
  sys_cfg.seed = seed;
  AquaSystem system{sys_cfg};
  auto& fastest = system.add_replica(replica::make_sampled_service(
                                         stats::make_truncated_normal(msec(30), msec(6))),
                                     replica_config(fault_rate));
  for (int i = 0; i < 4; ++i) {
    system.add_replica(replica::make_sampled_service(
        stats::make_truncated_normal(msec(45), msec(10))));
  }

  Outcome outcome;
  auto& sim = system.simulator();
  PassiveReplicationHandler handler{system.simulator(), system.lan(), system.group(),
                                    ClientId{77},       HostId{1000}, PassiveConfig{}};
  sim.run_for(msec(50));
  for (int i = 0; i < 100; ++i) {
    if (crash_primary && i == 50) fastest.crash_host();
    bool answered = false;
    handler.invoke(i, [&outcome, &answered, i](const PassiveReply& r) {
      answered = true;
      outcome.response_ms.add(to_ms(r.response_time));
      if (r.result != i) ++outcome.wrong;
    });
    sim.run_for(msec(400));
    ++outcome.requests;
    if (!answered) ++outcome.unanswered;
  }
  return outcome;
}

/// Timing handler with the favourite crashing mid-run.
Outcome run_timing_crash(std::uint64_t seed) {
  SystemConfig sys_cfg;
  sys_cfg.seed = seed;
  AquaSystem system{sys_cfg};
  auto& fastest = system.add_replica(replica::make_sampled_service(
      stats::make_truncated_normal(msec(30), msec(6))));
  for (int i = 0; i < 4; ++i) {
    system.add_replica(replica::make_sampled_service(
        stats::make_truncated_normal(msec(45), msec(10))));
  }
  Outcome outcome;
  auto& sim = system.simulator();
  auto handler = std::make_unique<TimingFaultHandler>(
      system.simulator(), system.lan(), system.group(), ClientId{77}, HostId{1000},
      core::QosSpec{msec(200), 0.9}, Rng{seed});
  sim.run_for(msec(50));
  for (int i = 0; i < 100; ++i) {
    if (i == 50) fastest.crash_host();
    bool answered = false;
    handler->invoke(i, [&outcome, &answered, i](const ReplyInfo& info) {
      answered = true;
      outcome.response_ms.add(to_ms(info.response_time));
      if (info.result != i) ++outcome.wrong;
    });
    sim.run_for(msec(400));
    ++outcome.requests;
    if (!answered) ++outcome.unanswered;
  }
  return outcome;
}

void print_row(const char* name, const Outcome& o) {
  std::printf("%-26s %10zu %12.1f %10.1f %9zu %12zu\n", name, o.requests,
              o.response_ms.empty() ? 0.0 : o.response_ms.summary().mean(),
              o.response_ms.empty() ? 0.0 : o.response_ms.quantile(0.99), o.wrong, o.unanswered);
}

}  // namespace

int main() {
  std::printf("=== Handler comparison: first-reply (this paper) vs majority voting ===\n");
  std::printf("5 replicas; the FASTEST one is value-faulty in the faulty scenarios\n\n");
  std::printf("%-26s %10s %12s %10s %9s %12s\n", "handler / fleet", "requests", "mean ms",
              "p99 ms", "wrong", "unanswered");
  for (double fault_rate : {0.0, 0.3, 1.0}) {
    char timing_name[64], voting_name[64], passive_name[64];
    std::snprintf(timing_name, sizeof timing_name, "timing   (fault %.0f%%)", fault_rate * 100);
    std::snprintf(voting_name, sizeof voting_name, "voting   (fault %.0f%%)", fault_rate * 100);
    std::snprintf(passive_name, sizeof passive_name, "passive  (fault %.0f%%)", fault_rate * 100);
    print_row(timing_name, run_timing(fault_rate, 1234));
    print_row(voting_name, run_voting(fault_rate, 1234));
    print_row(passive_name, run_passive(fault_rate, 1234));
  }

  std::printf("\ncrash scenario: the fastest replica (the passive PRIMARY) dies mid-run\n");
  std::printf("%-26s %10s %12s %10s %9s %12s\n", "handler", "requests", "mean ms", "p99 ms",
              "wrong", "unanswered");
  print_row("timing   (crash)", run_timing_crash(1234));
  print_row("passive  (crash)", run_passive(0.0, 1234, /*crash_primary=*/true));
  std::printf("\nexpected shape: the timing fault handler is consistently faster (first\n");
  std::printf("reply, usually from the fastest replica) but delivers every corrupted\n");
  std::printf("result the faulty replica wins the race with; the voting handler pays\n");
  std::printf("median-replica latency and masks the value faults completely; the\n");
  std::printf("passive handler matches timing latency fault-free (it uses only the\n");
  std::printf("primary) but its crash p99 shows the failure-detection outage that\n");
  std::printf("Algorithm 1's redundancy hides.\n");
  return 0;
}
