#include "paper_experiment.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "gateway/system.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "trace/csv.h"

namespace aqua::bench {

SweepPoint run_point(const PaperSetup& setup, Duration deadline, double requested_probability,
                     PolicyFactory policy_factory) {
  SweepPoint point;
  point.deadline = deadline;
  point.requested_probability = requested_probability;

  double selected_sum = 0.0;
  double response_sum_ms = 0.0;
  std::size_t answered = 0;
  std::size_t failures = 0;
  std::size_t requests = 0;

  for (std::size_t s = 0; s < setup.seeds; ++s) {
    // One telemetry hub per seed: the figures are computed from its
    // exported request traces rather than from in-process state, so the
    // bench exercises the same pipeline an operator would scrape.
    // Telemetry never schedules events or draws randomness, so the runs
    // are bit-identical to the uninstrumented ones.
    obs::Telemetry telemetry;
    gateway::SystemConfig sys_cfg;
    sys_cfg.seed = setup.base_seed + s;
    sys_cfg.telemetry = &telemetry;
    gateway::AquaSystem system{sys_cfg};
    for (std::size_t r = 0; r < setup.replicas; ++r) {
      system.add_replica(replica::make_sampled_service(
          stats::make_truncated_normal(setup.service_mean, setup.service_spread)));
    }

    gateway::HandlerConfig handler_cfg;
    handler_cfg.repository.window_size = setup.window_size;
    handler_cfg.dispatch = setup.dispatch;

    gateway::ClientWorkload workload;
    workload.total_requests = setup.requests_per_client;
    workload.think_time = stats::make_constant(setup.think_time);

    // Client 1: the fixed background client (deadline 200ms, Pc = 0).
    system.add_client(core::QosSpec{setup.background_deadline, 0.0}, workload, handler_cfg);
    // Client 2: the measured client.
    gateway::ClientWorkload measured = workload;
    measured.start_delay = msec(137);  // decorrelate the two request trains
    gateway::ClientApp& app = system.add_client(
        core::QosSpec{deadline, requested_probability}, measured, handler_cfg,
        policy_factory != nullptr ? policy_factory() : nullptr);

    // 50 requests with 1s think time: bound the run generously.
    system.run_until_clients_done(sec(300));

    // Figure data path: aggregate straight from the telemetry trace ring.
    // The CSV round trip the bench used to take here (write_requests_csv
    // -> read_requests_csv) is pinned separately by tests/obs_export_test
    // and tests/obs_calibration_test; re-serializing every seed bought no
    // extra coverage, only probability-cell quantization risk.
    const ClientId measured_client = app.handler().client();
    const trace::ClientRunReport report = obs::to_run_report(
        telemetry.request_traces(), measured_client,
        "client-" + std::to_string(measured_client.value()));
    requests += report.requests;
    failures += report.timing_failures;
    answered += report.answered;
    if (!report.redundancy.empty()) {
      selected_sum += report.redundancy.summary().mean() *
                      static_cast<double>(report.redundancy.count());
    }
    if (!report.response_times_ms.empty()) {
      response_sum_ms += report.response_times_ms.summary().mean() *
                         static_cast<double>(report.response_times_ms.count());
    }
  }

  point.requests = requests;
  if (requests > 0) {
    point.mean_selected = selected_sum / static_cast<double>(requests);
    point.failure_probability = static_cast<double>(failures) / static_cast<double>(requests);
  }
  if (answered > 0) point.mean_response_ms = response_sum_ms / static_cast<double>(answered);
  return point;
}

std::vector<SweepPoint> run_sweep(const PaperSetup& setup,
                                  const std::vector<double>& probabilities,
                                  std::int64_t step_ms) {
  std::vector<SweepPoint> sweep;
  for (double pc : probabilities) {
    for (std::int64_t t = 100; t <= 200; t += step_ms) {
      sweep.push_back(run_point(setup, msec(t), pc));
    }
  }
  return sweep;
}

void print_sweep_table(const std::vector<SweepPoint>& sweep,
                       const std::vector<double>& probabilities, bool select_failures) {
  std::printf("%-18s", "deadline (ms)");
  for (double pc : probabilities) std::printf("  Pc=%-10.2f", pc);
  std::printf("\n");
  // Collect distinct deadlines (sweep is grouped by probability).
  std::vector<Duration> deadlines;
  for (const SweepPoint& p : sweep) {
    if (deadlines.empty() || p.deadline > deadlines.back()) {
      deadlines.push_back(p.deadline);
    } else if (p.deadline <= deadlines.front()) {
      break;  // next probability group started
    }
  }
  for (Duration t : deadlines) {
    std::printf("%-18.0f", to_ms(t));
    for (double pc : probabilities) {
      for (const SweepPoint& p : sweep) {
        if (p.deadline == t && p.requested_probability == pc) {
          std::printf("  %-13.3f", select_failures ? p.failure_probability : p.mean_selected);
          break;
        }
      }
    }
    std::printf("\n");
  }
}

bool maybe_write_csv(const std::vector<SweepPoint>& sweep, const char* name) {
  const char* dir = std::getenv("AQUA_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return false;
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = std::filesystem::path(dir) / (std::string(name) + ".csv");
  std::ofstream out(path);
  trace::CsvWriter csv{out};
  csv.header({"deadline_ms", "requested_probability", "mean_selected", "failure_probability",
              "mean_response_ms", "requests"});
  for (const SweepPoint& p : sweep) {
    csv.row({trace::CsvWriter::cell(to_ms(p.deadline), 1),
             trace::CsvWriter::cell(p.requested_probability, 2),
             trace::CsvWriter::cell(p.mean_selected, 4),
             trace::CsvWriter::cell(p.failure_probability, 4),
             trace::CsvWriter::cell(p.mean_response_ms, 2),
             trace::CsvWriter::cell(static_cast<std::uint64_t>(p.requests))});
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace aqua::bench
