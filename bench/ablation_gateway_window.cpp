// Ablation of the §5.3.1 suggested extension: record the two-way
// gateway-to-gateway delay over a sliding window instead of keeping only
// its most recent value.
//
// The paper keeps the last value because its LAN "does not frequently
// fluctuate"; "For environments in which this observation is not true, it
// would be simple to extend our approach". This bench creates that
// environment — periodic traffic spikes — and compares the two T models.
#include <cstdio>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  double failure_prob = 0.0;
  double cost = 0.0;
  double infeasible = 0.0;  // fraction of selections that fell back to M
};

Outcome run(bool windowed, bool spiky, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  if (spiky) {
    cfg.lan.spike.enabled = true;
    cfg.lan.spike.mean_interval = sec(4);
    cfg.lan.spike.mean_duration = msec(250);
    cfg.lan.spike.delay_factor = 100.0;
  }
  AquaSystem system{cfg};
  for (int i = 0; i < 6; ++i) {
    system.add_replica(
        replica::make_sampled_service(stats::make_truncated_normal(msec(40), msec(10))));
  }
  HandlerConfig handler_cfg;
  handler_cfg.model.windowed_gateway_delay = windowed;
  handler_cfg.repository.gateway_window_size = 8;

  ClientWorkload workload;
  workload.total_requests = 80;
  workload.think_time = stats::make_constant(msec(150));
  ClientApp& app = system.add_client(core::QosSpec{msec(150), 0.9}, workload, handler_cfg);
  system.run_for(sec(120));

  const auto report = app.report();
  Outcome outcome;
  outcome.failure_prob = report.failure_probability();
  outcome.cost = report.mean_redundancy();
  outcome.infeasible = report.requests > 0 ? static_cast<double>(report.infeasible_selections) /
                                                 static_cast<double>(report.requests)
                                           : 0.0;
  return outcome;
}

Outcome average(bool windowed, bool spiky) {
  Outcome total;
  constexpr std::size_t kSeeds = 10;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(windowed, spiky, 700 + s);
    total.failure_prob += o.failure_prob / kSeeds;
    total.cost += o.cost / kSeeds;
    total.infeasible += o.infeasible / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Ablation: last-value vs windowed gateway delay T (SS5.3.1) ===\n");
  std::printf("6 replicas, deadline 150ms, Pc=0.9; spiky LAN: 100x delays ~6%% of time\n\n");
  std::printf("%-12s %-22s %14s %8s %14s\n", "LAN", "T model", "failure prob", "cost",
              "fallback to M");
  for (bool spiky : {false, true}) {
    for (bool windowed : {false, true}) {
      const Outcome o = average(windowed, spiky);
      std::printf("%-12s %-22s %14.3f %8.2f %14.3f\n", spiky ? "spiky" : "quiet",
                  windowed ? "windowed (extension)" : "last value (paper)", o.failure_prob,
                  o.cost, o.infeasible);
    }
  }
  std::printf("\nexpected shape: on a quiet LAN the models coincide (the paper's\n");
  std::printf("rationale for keeping the last value). On the spiky LAN the failures\n");
  std::printf("themselves are the in-flight requests a spike catches (no model can\n");
  std::printf("save those), but the MODELS react differently afterwards: the\n");
  std::printf("last-value model is poisoned by spike-era T measurements and\n");
  std::printf("occasionally deems every replica infeasible (fallback to M), while the\n");
  std::printf("windowed model dilutes the spike sample across the window and never\n");
  std::printf("falls back.\n");
  return 0;
}
