// Figure 5: "Validation of the probabilistic model" — the observed
// probability of timing failures for the measured client over the same
// sweep as Figure 4.
//
// Paper shape: the observed failure probability stays BELOW the failure
// budget 1 - Pc in every case; maxima reported were 0.08 (Pc=0.9), 0.32
// (Pc=0.5) and 0.36 (Pc=0).
//
// Like Figure 4, the sweep is aggregated from the telemetry hub's
// request-trace ring rather than from in-process state.
#include <cstdio>
#include <cstdlib>

#include "bench_json.h"
#include "paper_experiment.h"
#include "stats/confidence.h"

int main() {
  using namespace aqua::bench;

  PaperSetup setup;
  if (const char* s = std::getenv("AQUA_BENCH_SEEDS")) setup.seeds = std::strtoul(s, nullptr, 10);

  std::printf("=== Figure 5: observed probability of timing failures ===\n");
  std::printf("same setup as Figure 4; failure budget is 1 - Pc per column\n\n");

  const std::vector<double> probabilities{0.9, 0.5, 0.0};
  const auto sweep = run_sweep(setup, probabilities);
  print_sweep_table(sweep, probabilities, /*select_failures=*/true);

  // The headline validation: max observed failure probability per column
  // vs the client's failure budget.
  std::printf("\nvalidation (max observed vs budget 1-Pc, 95%% Wilson CI):\n");
  std::vector<BenchMetric> bench_rows;
  for (double pc : probabilities) {
    double max_fail = 0.0;
    std::size_t max_requests = 0;
    for (const SweepPoint& p : sweep) {
      if (p.requested_probability == pc && p.failure_probability > max_fail) {
        max_fail = p.failure_probability;
        max_requests = p.requests;
      }
      if (p.requested_probability == pc && max_requests == 0) max_requests = p.requests;
    }
    const double budget = 1.0 - pc;
    const auto failures = static_cast<std::size_t>(
        max_fail * static_cast<double>(max_requests) + 0.5);
    const auto ci = max_requests > 0
                        ? aqua::stats::wilson_interval(failures, max_requests)
                        : aqua::stats::ProportionInterval{};
    std::printf("  Pc=%.2f: max failure prob %.3f %s budget %.2f   (95%% CI [%.3f, %.3f]%s)\n",
                pc, max_fail, max_fail <= budget ? "<=" : "EXCEEDS", budget, ci.lower, ci.upper,
                ci.upper <= budget ? "" : "; upper bound crosses the budget");
    char metric[48];
    std::snprintf(metric, sizeof metric, "max_failure_probability_pc_%.2f", pc);
    bench_rows.push_back({metric, max_fail, "probability"});
  }
  std::printf("paper maxima: 0.08 / 0.32 / 0.36 for Pc = 0.9 / 0.5 / 0\n");
  write_bench_json("BENCH_fig5.json", "fig5_timing_failures", bench_rows);
  maybe_write_csv(sweep, "fig5_timing_failures");
  return 0;
}
