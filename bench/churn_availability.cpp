// Long-horizon churn: replicas keep crashing; does the service keep its
// QoS? Compares three configurations over the same crash schedule:
//   (a) Algorithm 1 alone (the pool only shrinks),
//   (b) Algorithm 1 + dependability manager (§2: Proteus restores the
//       replication level),
//   (c) single-replica fastest-mean + manager (the related-work scheme
//       even with replacement capacity).
// Metric: timing-failure probability and abandoned requests over a
// 2-minute run with a crash every ~15 seconds.
#include <cstdio>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  double failure_prob = 0.0;
  double abandoned = 0.0;
  double end_replication = 0.0;
};

Outcome run(bool with_manager, bool dynamic_policy, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  AquaSystem system{cfg};
  const auto model = [] {
    return replica::make_sampled_service(stats::make_truncated_normal(msec(80), msec(15)));
  };
  for (int i = 0; i < 5; ++i) system.add_replica(model());
  if (with_manager) {
    manager::ManagerConfig mcfg;
    mcfg.min_replicas = 5;
    mcfg.startup_delay = sec(3);
    system.enable_dependability_manager(mcfg, model());
  }

  // Four concurrent clients: enough offered load that a pool shrunk to
  // one or two replicas saturates (the scalability half of SS1's
  // argument), while five replicas carry it comfortably.
  std::vector<ClientApp*> apps;
  for (int c = 0; c < 4; ++c) {
    ClientWorkload workload;
    workload.total_requests = 0;  // run for the whole horizon
    workload.think_time = stats::make_constant(msec(100));
    workload.start_delay = msec(29 * c);
    core::PolicyPtr policy = dynamic_policy ? nullptr : core::make_fastest_mean_policy();
    apps.push_back(&system.add_client(core::QosSpec{msec(250), 0.9}, workload, HandlerConfig{},
                                      std::move(policy)));
  }

  // Crash an alive replica every ~15s (deterministic schedule).
  Rng crash_rng = Rng{seed}.fork("crash-schedule");
  for (int t = 15; t <= 110; t += 15) {
    system.simulator().schedule_after(sec(t), [&system, &crash_rng] {
      auto replicas = system.replicas();
      std::vector<replica::ReplicaServer*> alive;
      for (auto* r : replicas) {
        if (r->alive()) alive.push_back(r);
      }
      if (alive.size() <= 1) return;  // never kill the last one
      const auto victim = static_cast<std::size_t>(
          crash_rng.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1));
      alive[victim]->crash_host();
    });
  }
  system.run_for(sec(120));

  std::size_t live = 0;
  for (auto* r : system.replicas()) {
    if (r->alive()) ++live;
  }
  Outcome outcome;
  outcome.end_replication = static_cast<double>(live);
  for (ClientApp* app : apps) {
    const auto report = app->report();
    outcome.failure_prob += report.failure_probability() / static_cast<double>(apps.size());
    outcome.abandoned += static_cast<double>(app->abandoned()) / static_cast<double>(apps.size());
  }
  return outcome;
}

Outcome average(bool with_manager, bool dynamic_policy) {
  Outcome total;
  constexpr std::size_t kSeeds = 6;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(with_manager, dynamic_policy, 800 + s);
    total.failure_prob += o.failure_prob / kSeeds;
    total.abandoned += o.abandoned / kSeeds;
    total.end_replication += o.end_replication / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Churn availability: crashes every ~15s over a 2 minute run ===\n");
  std::printf("5 replicas initially, 4 clients, deadline 250ms, Pc=0.9, restart delay 3s\n\n");
  std::printf("%-42s %14s %12s %16s\n", "configuration", "failure prob", "abandoned",
              "final replicas");
  struct RowSpec {
    const char* name;
    bool manager;
    bool dynamic;
  };
  const RowSpec rows[] = {
      {"Algorithm 1, no manager", false, true},
      {"Algorithm 1 + dependability manager", true, true},
      {"fastest-mean x1 + dependability manager", true, false},
  };
  for (const RowSpec& row : rows) {
    const Outcome o = average(row.manager, row.dynamic);
    std::printf("%-42s %14.3f %12.1f %16.1f\n", row.name, o.failure_prob, o.abandoned,
                o.end_replication);
  }
  std::printf("\nexpected shape: without the manager the pool shrinks toward one replica\n");
  std::printf("and late-run crashes hurt; with the manager Algorithm 1 rides through the\n");
  std::printf("churn; the single-replica baseline still pays for every crash it is\n");
  std::printf("pointing at, replacements or not.\n");
  return 0;
}
