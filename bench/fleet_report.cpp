// Fleet observability cost + fidelity report: a scripted 1-gateway /
// 3-replica run over loopback UDP, scraped and stitched by
// obs::FleetCollector exactly as `aqua_top --fleet` would.
//
// "Fleet" here means four independent Telemetry hubs behind four
// independent UdpTransports and ScrapeServers — real sockets, real
// HTTP scrapes, real per-hub clocks — assembled in one process so the
// bench is self-contained and CI-runnable. The report answers:
//
//   - stitch fidelity: what fraction of answered requests reassemble
//     into a complete cross-process trace (root + dispatch + queue +
//     service), and how well the per-leg attribution sums back to the
//     measured end-to-end time (residual = clock-offset error + hand-off
//     gaps);
//   - collector cost: wall time to scrape all four endpoints and to
//     merge + stitch the results;
//   - merge conservation: summed fleet counters equal the sum of each
//     node's own /metrics totals (checked against the raw Prometheus
//     bodies, i.e. through a second, independent export path).
//
// Emits BENCH_fleet.json; tools/run_checks.sh greps the headline rows.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "net/udp_transport.h"
#include "obs/fleet.h"
#include "obs/scrape.h"
#include "obs/telemetry.h"
#include "runtime/replica_endpoint.h"
#include "runtime/threaded_client.h"
#include "runtime/threaded_replica.h"
#include "stats/variates.h"

namespace {

using namespace aqua;

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kRequests = 200;

net::UdpTransportConfig fast_udp() {
  net::UdpTransportConfig cfg;
  cfg.retransmit_initial = msec(5);
  cfg.retransmit_backoff = 1.5;
  cfg.max_attempts = 4;
  cfg.retransmit_tick = msec(2);
  return cfg;
}

/// One replica "process": its own hub, transport, worker, and scrape
/// server, indistinguishable over the wire from a separate OS process.
struct ReplicaNode {
  obs::Telemetry telemetry;
  net::UdpTransport transport{fast_udp()};
  std::unique_ptr<runtime::ThreadedReplica> replica;
  std::unique_ptr<runtime::ReplicaEndpoint> endpoint;
  std::unique_ptr<obs::ScrapeServer> scrape;
  std::uint16_t udp_port = 0;

  explicit ReplicaNode(std::uint64_t id) {
    transport.set_telemetry(&telemetry);
    replica = std::make_unique<runtime::ThreadedReplica>(
        ReplicaId{id}, stats::make_exponential(msec(2)), Rng{7}.fork("replica").fork(id),
        &telemetry);
    endpoint = std::make_unique<runtime::ReplicaEndpoint>(
        transport, *replica,
        [this, id](net::ReceiveFn fn) {
          return transport.create_endpoint_on(HostId{id}, /*port=*/0, std::move(fn));
        },
        &telemetry);
    udp_port = transport.endpoint_port(endpoint->endpoint());
    scrape = std::make_unique<obs::ScrapeServer>(telemetry, /*port=*/0);
  }
};

/// Sum of one mangled counter across raw Prometheus bodies.
std::map<std::string, double> parse_prometheus(const std::string& body) {
  std::map<std::string, double> metrics;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    metrics[line.substr(0, space)] = std::atof(line.c_str() + space + 1);
  }
  return metrics;
}

std::string mangle(const std::string& name) {
  std::string out = "aqua_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Fleet observability report: 1 gateway + %zu replicas over UDP ===\n\n",
              kReplicas);

  // ------------------------------------------------------- assemble fleet
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    replicas.push_back(std::make_unique<ReplicaNode>(i + 1));
  }

  obs::Telemetry gateway_telemetry;
  net::UdpTransport gateway_transport{fast_udp()};
  gateway_transport.set_telemetry(&gateway_telemetry);
  obs::ScrapeServer gateway_scrape{gateway_telemetry, /*port=*/0};

  runtime::ThreadedClientConfig client_config;
  client_config.telemetry = &gateway_telemetry;
  client_config.transport = &gateway_transport;
  client_config.id = ClientId{1};
  client_config.host = HostId{1'000};
  runtime::ThreadedClient client{std::vector<runtime::ThreadedReplica*>{},
                                 core::QosSpec{msec(50), 0.9},
                                 Rng{7}.fork("client").fork(1), client_config};
  for (const auto& node : replicas) {
    client.subscribe_to(gateway_transport.register_peer("127.0.0.1", node->udp_port));
  }
  const auto discovery_deadline = std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (client.known_replicas() < kReplicas &&
         std::chrono::steady_clock::now() < discovery_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  if (client.known_replicas() == 0) {
    std::fprintf(stderr, "discovery failed: no replica announced\n");
    return 1;
  }

  // ------------------------------------------------------------ workload
  for (std::size_t i = 0; i < kRequests; ++i) {
    client.invoke(static_cast<std::int64_t>(i));
    std::this_thread::sleep_for(usec(500));
  }
  client.shutdown();

  // Let the fleet go quiescent before scraping: full-K multicast means
  // the losing replicas are still draining their queues (and sending
  // replies nobody is listening for) after the last invoke returns. A
  // scrape mid-drain would make /snapshot and /metrics — read a few ms
  // apart — disagree by the messages processed in between, and the
  // conservation check below deliberately has no slack.
  const auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds{10};
  std::uint64_t last_serviced = 0;
  int stable_polls = 0;
  while (stable_polls < 3 && std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
    std::uint64_t serviced = 0;
    std::size_t queued = 0;
    for (const auto& node : replicas) {
      serviced += node->replica->serviced();
      queued += node->replica->queue_length();
    }
    stable_polls = (queued == 0 && serviced == last_serviced) ? stable_polls + 1 : 0;
    last_serviced = serviced;
  }

  // -------------------------------------------------------- scrape fleet
  std::vector<obs::FleetEndpoint> endpoints;
  endpoints.push_back({.host = "127.0.0.1", .port = gateway_scrape.port(),
                       .label = "gateway"});
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    endpoints.push_back({.host = "127.0.0.1", .port = replicas[i]->scrape->port(),
                         .label = "replica-" + std::to_string(i + 1)});
  }
  obs::FleetCollector collector{endpoints};
  const obs::FleetSnapshot snapshot = collector.collect();

  // ---------------------------------------------------- derived numbers
  std::size_t unreachable = 0;
  for (const obs::FleetNodeStatus& node : snapshot.nodes) {
    if (!node.reachable) {
      ++unreachable;
      std::fprintf(stderr, "unreachable: %s (%s)\n", node.endpoint.name().c_str(),
                   node.error.c_str());
    }
  }

  // Median absolute attribution residual over complete traces: how far
  // the five legs are from summing to the measured end-to-end time.
  std::vector<std::int64_t> residuals;
  for (const obs::StitchedTrace& t : snapshot.traces) {
    if (t.complete) residuals.push_back(std::abs(t.residual_us));
  }
  std::sort(residuals.begin(), residuals.end());
  const double residual_p50_us =
      residuals.empty() ? 0.0 : static_cast<double>(residuals[residuals.size() / 2]);

  // Merge conservation: for every merged counter, the fleet total must
  // equal the sum over nodes of that counter in the RAW /metrics bodies.
  bool conserved = true;
  for (const auto& [name, value] : snapshot.counters) {
    double prometheus_sum = 0.0;
    for (const obs::FleetNodeStatus& node : snapshot.nodes) {
      const auto metrics = parse_prometheus(node.data.prometheus);
      const auto it = metrics.find(mangle(name));
      if (it != metrics.end()) prometheus_sum += it->second;
    }
    if (static_cast<double>(value) != prometheus_sum) {
      conserved = false;
      std::fprintf(stderr, "conservation violated: %s merged=%llu prometheus_sum=%.0f\n",
                   name.c_str(), static_cast<unsigned long long>(value), prometheus_sum);
    }
  }

  const obs::FleetAttribution& a = snapshot.attribution;
  const double completeness = snapshot.stitch_completeness();
  std::printf("nodes: %zu (%zu unreachable)\n", snapshot.nodes.size(), unreachable);
  std::printf("traces: %llu total, %llu answered, %llu stitched (%.1f%% complete)\n",
              static_cast<unsigned long long>(snapshot.traces_total),
              static_cast<unsigned long long>(snapshot.traces_answered),
              static_cast<unsigned long long>(snapshot.traces_stitched),
              100.0 * completeness);
  std::printf("collector: scrape %lldus, merge+stitch %lldus, max clock skew %lldus\n",
              static_cast<long long>(snapshot.scrape_us),
              static_cast<long long>(snapshot.merge_us),
              static_cast<long long>(snapshot.max_abs_clock_skew_us));
  std::printf("attribution (p99): end-to-end %lldus = wire %lldus + queue %lldus + "
              "service %lldus (median |residual| %.0fus)\n",
              static_cast<long long>(a.end_to_end.quantile(0.99)),
              static_cast<long long>(a.wire.quantile(0.99)),
              static_cast<long long>(a.queue.quantile(0.99)),
              static_cast<long long>(a.service.quantile(0.99)), residual_p50_us);
  std::printf("merge conservation: %s\n", conserved ? "ok" : "VIOLATED");

  aqua::bench::write_bench_json(
      "BENCH_fleet.json", "fleet_report",
      {{"stitch_completeness_pct", 100.0 * completeness, "percent"},
       {"traces_total", static_cast<double>(snapshot.traces_total), "count"},
       {"traces_answered", static_cast<double>(snapshot.traces_answered), "count"},
       {"traces_stitched", static_cast<double>(snapshot.traces_stitched), "count"},
       {"scrape_us", static_cast<double>(snapshot.scrape_us), "us"},
       {"merge_us", static_cast<double>(snapshot.merge_us), "us"},
       {"max_abs_clock_skew_us", static_cast<double>(snapshot.max_abs_clock_skew_us), "us"},
       {"end_to_end_p99_us", static_cast<double>(a.end_to_end.quantile(0.99)), "us"},
       {"wire_share_p99", a.share(a.wire, 0.99), "fraction"},
       {"queue_share_p99", a.share(a.queue, 0.99), "fraction"},
       {"service_share_p99", a.share(a.service, 0.99), "fraction"},
       {"attribution_residual_p50_us", residual_p50_us, "us"},
       {"merge_conservation", conserved ? 1.0 : 0.0, "bool"},
       {"unreachable_nodes", static_cast<double>(unreachable), "count"}});

  // Fidelity floor: CI treats a loss-free loopback run that stitches
  // under 95% of answered traces as a regression.
  if (unreachable > 0) return 1;
  if (snapshot.traces_answered > 0 && completeness < 0.95) {
    std::fprintf(stderr, "stitch completeness %.1f%% below the 95%% floor\n",
                 100.0 * completeness);
    return 1;
  }
  if (!conserved) return 1;
  return 0;
}
