// Calibration report: how well the gateway's predicted P(t) tracks
// reality, and how fast the drift detector notices when it stops doing
// so.
//
// Two scenario families over a seed sweep:
//   - stationary: the service behaves exactly as modelled for the whole
//     run. Brier/ECE stay small and the Page-Hinkley detector must stay
//     quiet (alarms here are false positives).
//   - shifted: every replica's service time ramps toward x10 at t=8s and
//     never releases (the fault_drift_test scenario). The detector must
//     alarm, and the first-alarm sample is the early-warning latency.
//
// A third section micro-benches CalibrationTracker::record — the cost
// added to every outcome classification when calibration is enabled.
// Results land in BENCH_calibration.json for CI diffing.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "fault/scenario.h"
#include "fault/scenario_runner.h"
#include "gateway/system.h"
#include "obs/calibration.h"
#include "obs/telemetry.h"
#include "replica/service_model.h"
#include "stats/variates.h"

namespace {

using namespace aqua;
using namespace aqua::fault;

struct RunStats {
  double brier = 0.0;
  double ece = 0.0;
  double alarms = 0.0;
  double first_alarm_sample = 0.0;  ///< 0 = never alarmed
  double samples = 0.0;
};

/// One scenario run mirroring tests/fault_drift_test.cpp: 4 replicas,
/// 60 requests against a 150ms/0.8 QoS spec; when `shifted`, all four
/// replicas ramp toward x10 service time at t=8s without releasing.
RunStats run_once(std::uint64_t seed, bool shifted) {
  constexpr std::size_t kReplicas = 4;

  obs::Telemetry telemetry;
  gateway::SystemConfig system_config;
  system_config.seed = seed;
  system_config.telemetry = &telemetry;
  gateway::AquaSystem system{system_config};

  ScenarioHooks hooks;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    auto modulation = std::make_shared<stats::LoadModulation>();
    hooks.replica_load.push_back(modulation);
    system.add_replica(replica::make_modulated_service(
        replica::make_sampled_service(stats::make_truncated_normal(msec(60), msec(15))),
        modulation));
  }

  gateway::ClientWorkload workload;
  workload.total_requests = 60;
  workload.think_time = stats::make_constant(msec(200));
  system.add_client(core::QosSpec{msec(150), 0.8}, workload);

  ScenarioScript script;
  script.name = shifted ? "service-shift" : "stationary";
  if (shifted) {
    for (std::size_t r = 0; r < kReplicas; ++r) script.load_ramp(sec(8), sec(30), r, 10.0);
  }

  ScenarioRunner runner{system, script, std::move(hooks), seed};
  runner.run(sec(240));

  const obs::CalibrationSnapshot snap = telemetry.calibration()->snapshot();
  RunStats out;
  out.brier = snap.global.brier_mean();
  out.ece = snap.global.ece();
  out.alarms = static_cast<double>(snap.drift.alarms);
  // last_alarm_sample moves on repeat alarms, but with cooldown 50 and a
  // ~60-sample run there is at most one, so it IS the first alarm.
  out.first_alarm_sample = static_cast<double>(snap.drift.last_alarm_sample);
  out.samples = static_cast<double>(snap.global.samples);
  return out;
}

RunStats sweep(bool shifted, std::uint64_t seeds) {
  RunStats mean;
  double alarmed_runs = 0.0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const RunStats one = run_once(seed, shifted);
    mean.brier += one.brier;
    mean.ece += one.ece;
    mean.alarms += one.alarms;
    mean.samples += one.samples;
    if (one.first_alarm_sample > 0.0 || one.alarms > 0.0) {
      mean.first_alarm_sample += one.first_alarm_sample;
      alarmed_runs += 1.0;
    }
  }
  const double n = static_cast<double>(seeds);
  mean.brier /= n;
  mean.ece /= n;
  mean.alarms /= n;
  mean.samples /= n;
  mean.first_alarm_sample = alarmed_runs > 0.0 ? mean.first_alarm_sample / alarmed_runs : 0.0;
  return mean;
}

/// Cost of one CalibrationTracker::record on a warm tracker — the per-
/// outcome price of enabling calibration (no registry attached, matching
/// the tracker's standalone arithmetic cost).
double record_ns() {
  constexpr int kSamples = 200'000;
  obs::CalibrationTracker tracker{obs::CalibrationConfig{}, nullptr};
  Rng rng{17};
  // Pre-generate inputs so the loop times record() and not the Rng.
  std::vector<double> predicted(kSamples);
  std::vector<bool> timely(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    predicted[static_cast<std::size_t>(i)] = rng.uniform01();
    timely[static_cast<std::size_t>(i)] =
        rng.bernoulli(predicted[static_cast<std::size_t>(i)]);
  }
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  for (int i = 0; i < kSamples; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    (void)tracker.record(ReplicaId{idx % 4 + 1}, predicted[idx], timely[idx]);
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kSamples;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeeds = 5;

  std::printf("=== Calibration report: P(t) vs reality ===\n\n");
  const RunStats stationary = sweep(/*shifted=*/false, kSeeds);
  const RunStats shifted = sweep(/*shifted=*/true, kSeeds);

  std::printf("%-12s %10s %10s %10s %14s\n", "scenario", "brier", "ece", "alarms",
              "first-alarm@");
  std::printf("%-12s %10.4f %10.4f %10.2f %14s\n", "stationary", stationary.brier,
              stationary.ece, stationary.alarms, "-");
  std::printf("%-12s %10.4f %10.4f %10.2f %12.1f\n", "shifted", shifted.brier, shifted.ece,
              shifted.alarms, shifted.first_alarm_sample);

  const double ns = record_ns();
  std::printf("\nrecord() cost (warm tracker, no registry): %.1f ns/outcome\n", ns);

  const bool quiet_when_stationary = stationary.alarms == 0.0;
  const bool loud_when_shifted = shifted.alarms >= 1.0;
  std::printf("%s\n", quiet_when_stationary ? "PASS: stationary runs raise no drift alarms"
                                            : "WARN: false drift alarms on stationary runs");
  std::printf("%s\n", loud_when_shifted ? "PASS: every shifted run raises a drift alarm"
                                        : "WARN: shifted runs missed the drift alarm");

  aqua::bench::write_bench_json(
      "BENCH_calibration.json", "calibration_report",
      {{"stationary_brier", stationary.brier, "score"},
       {"stationary_ece", stationary.ece, "score"},
       {"stationary_drift_alarms", stationary.alarms, "count"},
       {"shifted_brier", shifted.brier, "score"},
       {"shifted_ece", shifted.ece, "score"},
       {"shifted_drift_alarms", shifted.alarms, "count"},
       {"shifted_first_alarm_sample", shifted.first_alarm_sample, "sample"},
       {"record_cost", ns, "ns"}});
  return (quiet_when_stationary && loud_when_shifted) ? 0 : 1;
}
