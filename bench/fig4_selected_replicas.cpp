// Figure 4: "Comparison of the number of selected replicas" — the average
// number of replicas Algorithm 1 selects for the measured client, as its
// deadline sweeps 100..200ms, for requested probabilities 0.9 / 0.5 / 0.
//
// Paper shape: (1) fewer replicas as the deadline grows; (2) fewer
// replicas for smaller requested probabilities; Pc=0 sits at the
// algorithm's floor of 2; Pc=0.9 reaches up to ~6 at tight deadlines.
//
// Data path: each run records into an obs::Telemetry hub; the figure is
// aggregated from its request-trace ring (telemetry.request_traces() ->
// to_run_report in paper_experiment.cpp), not from in-process counters.
#include <cstdio>
#include <cstdlib>

#include "paper_experiment.h"

int main() {
  using namespace aqua::bench;

  PaperSetup setup;
  if (const char* s = std::getenv("AQUA_BENCH_SEEDS")) setup.seeds = std::strtoul(s, nullptr, 10);

  std::printf("=== Figure 4: average number of replicas selected ===\n");
  std::printf("7 replicas (service ~ N(100ms, 50ms) truncated at 0), 2 clients,\n");
  std::printf("%zu requests each, 1s think time, window l=%zu, %zu seeds/point\n\n",
              setup.requests_per_client, setup.window_size, setup.seeds);

  const std::vector<double> probabilities{0.9, 0.5, 0.0};
  const auto sweep = run_sweep(setup, probabilities);
  print_sweep_table(sweep, probabilities, /*select_failures=*/false);
  std::printf("\npaper: decreasing in deadline; Pc=0.9 up to ~6, Pc=0 floor at 2\n");
  maybe_write_csv(sweep, "fig4_selected_replicas");
  return 0;
}
