// Wall-clock validation: the Figure 4/5 behaviour on REAL threads.
//
// The simulation reproduces the paper's figures; this harness checks the
// same qualitative claims outside the simulator — millisecond-scale
// service times on replica worker threads, delta measured from the real
// clock — so the results depend on genuine OS scheduling, not on the
// event kernel. Scaled down ~10x from the paper (service ~N(10ms, 5ms),
// deadlines 15..26ms) to keep the run short.
#include <cstdio>

#include "runtime/threaded_system.h"

int main() {
  using namespace aqua;
  using namespace aqua::runtime;

  std::printf("=== Runtime validation: selection on real threads ===\n");
  std::printf("5 replica threads, service ~ N(10ms, 5ms), 60 requests per point\n\n");
  std::printf("%-16s %-8s %16s %14s %12s %18s\n", "deadline (ms)", "Pc", "mean |K|",
              "fail prob", "budget", "selection (us)");

  bool all_within_budget = true;
  for (double pc : {0.9, 0.0}) {
    for (std::int64_t deadline_ms : {15, 18, 22, 26}) {
      ThreadedSystemConfig cfg;
      cfg.seed = 42;
      cfg.client.net.base = usec(300);
      cfg.client.net.jitter_max = usec(200);
      ThreadedSystem system{cfg};
      for (int i = 0; i < 5; ++i) {
        system.add_replica(stats::make_truncated_normal(msec(10), msec(5)));
      }
      system.add_client(core::QosSpec{msec(deadline_ms), pc});
      const auto stats = system.run_workload(60, msec(8));
      const WorkloadStats& s = stats[0];
      const double budget = 1.0 - pc;
      if (s.failure_probability() > budget) all_within_budget = false;
      std::printf("%-16lld %-8.2f %16.2f %14.3f %12.2f %18.1f\n",
                  static_cast<long long>(deadline_ms), pc, s.mean_redundancy,
                  s.failure_probability(), budget, s.mean_selection_overhead_us);
    }
  }
  std::printf("\nexpected shape (as in Figures 4/5, scaled): redundancy decreases with\n");
  std::printf("the deadline and with lower Pc; observed failures stay within 1-Pc.\n");
  std::printf("within budget everywhere: %s\n", all_within_budget ? "yes" : "NO");
  return 0;
}
