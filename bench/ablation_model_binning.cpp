// Ablation of pmf binning. The paper's model convolves the raw
// relative-frequency atoms (exact, O(l^2) support); binning the pmfs
// first bounds the support at a configurable resolution. This bench
// measures both sides of the trade: decision wall-time and prediction
// quality (failure probability on the Figure 4/5 workload).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/selection.h"
#include "gateway/system.h"
#include "paper_experiment.h"

namespace {

using namespace aqua;

std::vector<core::ReplicaObservation> synthetic_repository(std::size_t replicas,
                                                           std::size_t window) {
  Rng rng{11};
  std::vector<core::ReplicaObservation> obs;
  for (std::size_t i = 0; i < replicas; ++i) {
    core::ReplicaObservation o;
    o.id = ReplicaId{i + 1};
    for (std::size_t j = 0; j < window; ++j) {
      o.service_samples.push_back(usec(rng.uniform_int(60'000, 160'000)));
      o.queuing_samples.push_back(usec(rng.uniform_int(0, 40'000)));
    }
    o.gateway_delay = usec(rng.uniform_int(1000, 5000));
    obs.push_back(std::move(o));
  }
  return obs;
}

double decision_cost_us(Duration bin_width, std::size_t window) {
  const auto repository = synthetic_repository(8, window);
  core::ModelConfig model_cfg;
  model_cfg.bin_width = bin_width;
  core::ReplicaSelector selector{core::SelectionConfig{}, core::ResponseTimeModel{model_cfg}};
  const core::QosSpec qos{msec(150), 0.9};
  constexpr int kIterations = 300;
  const auto start = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < kIterations; ++i) sink += selector.select(repository, qos).selected.size();
  const auto end = std::chrono::steady_clock::now();
  if (sink == 0) std::abort();  // keep the loop alive
  return std::chrono::duration<double, std::micro>(end - start).count() / kIterations;
}

}  // namespace

int main() {
  using namespace aqua::bench;

  std::printf("=== Ablation: exact vs binned convolution ===\n\n");
  std::printf("decision cost (n=8 replicas):\n");
  std::printf("%-14s %18s %18s\n", "bin width", "l=20 (us)", "l=40 (us)");
  struct BinRow {
    const char* label;
    Duration width;
  };
  const BinRow bins[] = {{"exact", Duration::zero()},
                         {"1ms", msec(1)},
                         {"5ms", msec(5)},
                         {"20ms", msec(20)}};
  for (const BinRow& bin : bins) {
    std::printf("%-14s %18.1f %18.1f\n", bin.label, decision_cost_us(bin.width, 20),
                decision_cost_us(bin.width, 40));
  }

  std::printf("\nprediction quality on the Figure 4/5 workload (deadline 140ms, Pc=0.9):\n");
  std::printf("%-14s %18s %16s\n", "bin width", "failure prob", "mean |K|");
  for (const BinRow& bin : bins) {
    PaperSetup setup;
    setup.seeds = 6;
    setup.window_size = 20;  // large window: binning actually bites
    // run_point uses the default handler model; emulate by a local sweep.
    // We pass the bin width through a custom policy factory closure is not
    // possible with the function-pointer API, so run the sim directly.
    double failures = 0.0;
    double selected = 0.0;
    std::size_t requests = 0;
    for (std::uint64_t s = 0; s < setup.seeds; ++s) {
      aqua::gateway::SystemConfig sys_cfg;
      sys_cfg.seed = 900 + s;
      aqua::gateway::AquaSystem sys{sys_cfg};
      for (std::size_t r = 0; r < setup.replicas; ++r) {
        sys.add_replica(aqua::replica::make_sampled_service(
            stats::make_truncated_normal(setup.service_mean, setup.service_spread)));
      }
      aqua::gateway::HandlerConfig handler_cfg;
      handler_cfg.repository.window_size = setup.window_size;
      handler_cfg.model.bin_width = bin.width;
      aqua::gateway::ClientWorkload workload;
      workload.total_requests = setup.requests_per_client;
      workload.think_time = stats::make_constant(setup.think_time);
      sys.add_client(core::QosSpec{setup.background_deadline, 0.0}, workload, handler_cfg);
      aqua::gateway::ClientWorkload measured = workload;
      measured.start_delay = msec(137);
      auto& app = sys.add_client(core::QosSpec{msec(140), 0.9}, measured, handler_cfg);
      sys.run_until_clients_done(sec(300));
      const auto report = app.report();
      requests += report.requests;
      failures += static_cast<double>(report.timing_failures);
      selected += report.mean_redundancy() * static_cast<double>(report.requests);
    }
    std::printf("%-14s %18.3f %16.2f\n", bin.label,
                requests ? failures / static_cast<double>(requests) : 0.0,
                requests ? selected / static_cast<double>(requests) : 0.0);
  }
  std::printf("\nexpected shape: binning up to a few ms cuts decision cost with nearly\n");
  std::printf("identical predictions; very coarse bins (20ms) distort F near the\n");
  std::printf("deadline and change the selected redundancy.\n");
  return 0;
}
