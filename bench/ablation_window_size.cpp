// Ablation of the sliding-window length l (SS5.2: "its value is chosen so
// that it includes a reasonable number of recent requests but eliminates
// obsolete measurements"; the paper's experiments use l=5).
//
// Small windows adapt fast but estimate F coarsely (quantised to 1/l);
// large windows estimate finely but average over stale load conditions
// and cost more to convolve (Figure 3). This bench sweeps l on the
// Figure 4/5 workload at a mid-sweep deadline.
#include <cstdio>
#include <cstdlib>

#include "paper_experiment.h"

int main() {
  using namespace aqua::bench;

  std::printf("=== Ablation: sliding-window size l ===\n");
  std::printf("Figure 4/5 workload, deadline 140ms, Pc=0.9\n\n");
  std::printf("%-8s %18s %16s %20s\n", "l", "failure prob", "mean |K|", "mean response ms");

  for (std::size_t window : {1u, 2u, 3u, 5u, 10u, 20u, 40u}) {
    PaperSetup setup;
    setup.window_size = window;
    if (const char* s = std::getenv("AQUA_BENCH_SEEDS")) {
      setup.seeds = std::strtoul(s, nullptr, 10);
    }
    const SweepPoint p = run_point(setup, aqua::msec(140), 0.9);
    std::printf("%-8zu %18.3f %16.2f %20.1f\n", window, p.failure_probability, p.mean_selected,
                p.mean_response_ms);
  }
  std::printf("\nexpected shape: l=1 over-reacts to single samples (F is 0 or 1) and\n");
  std::printf("swings between under- and over-provisioning; l around 5 (the paper's\n");
  std::printf("choice) already tracks the distribution; much larger l changes little\n");
  std::printf("for this stationary workload but pays the Figure 3 overhead.\n");
  return 0;
}
