// Replicate-early vs replicate-late crossover for the paper's gateway.
//
// The paper's Algorithm 1 is replicate-early: the whole selected set K
// receives the request at t1. Hedged dispatch (replicate-late) sends the
// best-ranked member only and holds the rest behind a hedge timer;
// cancel-on-first-reply purges queued copies once a reply lands. The
// analytic literature (Poloczek & Ciucu; Sun/Koksal/Shroff) predicts a
// load-dependent crossover:
//
//   low load  — redundancy is nearly free latency insurance, but every
//               extra copy still burns a full service time; hedging keeps
//               the tail cover while spending ~1 service per request.
//   high load — eager copies queue behind each other and the "insurance"
//               becomes the overload; cancelling queued copies on the
//               first reply reclaims that wasted service.
//
// The bench sweeps {low, high} x {multicast, hedged, +-cancel} on the
// same seeds (LoadModulation scales service draws without changing rng
// consumption, so the workloads are identical across modes) and reports
// replica time consumed per request, timely fraction, and purge counts.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "gateway/system.h"
#include "paper_experiment.h"
#include "replica/service_model.h"
#include "stats/variates.h"

namespace {

using namespace aqua;
using aqua::bench::BenchMetric;

struct LoadSpec {
  const char* name;
  /// Service-time multiplier applied through LoadModulation.
  double service_factor;
  std::size_t clients;
  Duration think_time;
};

struct ModeSpec {
  const char* name;
  core::DispatchConfig dispatch;
};

struct ModeResult {
  std::size_t requests = 0;
  std::size_t timely = 0;
  std::uint64_t purged = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t cancels_sent = 0;
  double replica_busy_ms = 0.0;
  double redundancy_sum = 0.0;

  [[nodiscard]] double replica_ms_per_request() const {
    return requests > 0 ? replica_busy_ms / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double timely_fraction() const {
    return requests > 0 ? static_cast<double>(timely) / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double mean_redundancy() const {
    return requests > 0 ? redundancy_sum / static_cast<double>(requests) : 0.0;
  }
};

constexpr std::size_t kReplicas = 7;
constexpr std::size_t kRequestsPerClient = 60;

ModeResult run_mode(const LoadSpec& load, const core::DispatchConfig& dispatch,
                    std::size_t seeds, std::uint64_t base_seed) {
  ModeResult result;
  for (std::size_t s = 0; s < seeds; ++s) {
    gateway::SystemConfig sys_cfg;
    sys_cfg.seed = base_seed + s;
    gateway::AquaSystem system{sys_cfg};

    // The overload knob: scaling draws after the fact keeps rng
    // consumption identical across load levels and modes, so every run
    // at one seed sees the same request/jitter streams.
    auto modulation = std::make_shared<stats::LoadModulation>();
    modulation->set_factor(load.service_factor);
    for (std::size_t r = 0; r < kReplicas; ++r) {
      system.add_replica(replica::make_sampled_service(stats::make_modulated_sampler(
          stats::make_truncated_normal(msec(100), msec(50)), modulation)));
    }

    gateway::HandlerConfig handler_cfg;
    handler_cfg.repository.window_size = 5;
    handler_cfg.dispatch = dispatch;

    gateway::ClientWorkload workload;
    workload.total_requests = kRequestsPerClient;
    workload.think_time = stats::make_constant(load.think_time);
    for (std::size_t c = 0; c < load.clients; ++c) {
      workload.start_delay = msec(static_cast<std::int64_t>(37 * c));
      system.add_client(core::QosSpec{msec(300), 0.9}, workload, handler_cfg);
    }

    system.run_until_clients_done(sec(1200));

    for (const trace::ClientRunReport& report : system.reports()) {
      result.requests += report.requests;
      result.timely += report.requests - report.timing_failures;
      if (!report.redundancy.empty()) {
        result.redundancy_sum += report.redundancy.summary().mean() *
                                 static_cast<double>(report.redundancy.count());
      }
    }
    for (const replica::ReplicaServer* server : system.replicas()) {
      result.replica_busy_ms += to_ms(server->total_busy_time());
      result.purged += server->purged_requests();
    }
    for (gateway::ClientApp* app : system.clients()) {
      result.hedges_fired += app->handler().hedges_fired();
      result.cancels_sent += app->handler().cancels_sent();
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace aqua;
  using namespace aqua::bench;

  std::size_t seeds = 5;
  if (const char* s = std::getenv("AQUA_BENCH_SEEDS")) seeds = std::strtoul(s, nullptr, 10);

  const LoadSpec loads[] = {
      // ~25% utilisation: copies rarely queue, redundancy is pure surplus.
      {"low_load", 1.0, 4, msec(500)},
      // Service scaled 2.5x against the same deadline: selected sets grow,
      // copies queue behind each other, cancels have work to reclaim.
      {"high_load", 2.5, 4, msec(100)},
  };

  core::DispatchConfig hedged;
  hedged.mode = core::DispatchMode::kHedged;
  core::DispatchConfig multicast_cancel;
  multicast_cancel.cancel_on_first_reply = true;
  core::DispatchConfig hedged_cancel = hedged;
  hedged_cancel.cancel_on_first_reply = true;

  const ModeSpec modes[] = {
      {"multicast", core::DispatchConfig{}},  // the paper's replicate-early baseline
      {"hedged", hedged},
      {"multicast_cancel", multicast_cancel},
      {"hedged_cancel", hedged_cancel},
  };

  std::printf("=== hedging crossover: dispatch mode x load ===\n");
  std::printf("%zu replicas, %zu clients x %zu requests, deadline 300ms Pc 0.9, %zu seeds\n\n",
              kReplicas, loads[0].clients, kRequestsPerClient, seeds);

  std::vector<BenchMetric> rows;
  double baseline_replica_ms[2] = {0.0, 0.0};
  for (std::size_t li = 0; li < 2; ++li) {
    const LoadSpec& load = loads[li];
    std::printf("--- %s (service x%.1f, think %.0fms) ---\n", load.name, load.service_factor,
                to_ms(load.think_time));
    std::printf("%-18s %14s %8s %8s %8s %8s %8s\n", "mode", "replica_ms/req", "timely",
                "mean_K", "hedges", "cancels", "purged");
    for (const ModeSpec& mode : modes) {
      const ModeResult r = run_mode(load, mode.dispatch, seeds, 7100 + 100 * li);
      std::printf("%-18s %14.1f %8.3f %8.2f %8llu %8llu %8llu\n", mode.name,
                  r.replica_ms_per_request(), r.timely_fraction(), r.mean_redundancy(),
                  static_cast<unsigned long long>(r.hedges_fired),
                  static_cast<unsigned long long>(r.cancels_sent),
                  static_cast<unsigned long long>(r.purged));
      if (mode.dispatch.is_default()) baseline_replica_ms[li] = r.replica_ms_per_request();

      const std::string prefix = std::string(load.name) + "." + mode.name;
      rows.push_back({prefix + ".replica_ms_per_request", r.replica_ms_per_request(), "ms"});
      rows.push_back({prefix + ".timely_fraction", r.timely_fraction(), "fraction"});
      rows.push_back({prefix + ".mean_redundancy", r.mean_redundancy(), "replicas"});
      rows.push_back({prefix + ".purged_per_request",
                      r.requests > 0 ? static_cast<double>(r.purged) /
                                           static_cast<double>(r.requests)
                                     : 0.0,
                      "copies"});
      if (std::string(mode.name) == "hedged" && li == 0) {
        rows.push_back({"low_load.hedged.replica_savings_vs_multicast",
                        baseline_replica_ms[0] - r.replica_ms_per_request(), "ms"});
      }
      if (std::string(mode.name) == "multicast_cancel" && li == 1) {
        rows.push_back({"high_load.cancel.replica_savings_vs_multicast",
                        baseline_replica_ms[1] - r.replica_ms_per_request(), "ms"});
      }
    }
    std::printf("\n");
  }

  std::printf("expectation: hedged < multicast on replica_ms/req at low load;\n"
              "cancel modes purge queued copies and cut replica_ms/req at high load.\n");
  write_bench_json("BENCH_hedging.json", "hedging_crossover", rows);
  return 0;
}
