// Transport round-trip comparison: one ping-pong hop pair through each
// net::Transport backend.
//
// The sim row is virtual time — the Lan's modelled two-way delay
// (stack + wire + jitter), the number every seeded experiment runs on.
// The udp row is wall-clock time through real kernel sockets on
// loopback, acks and dedup included — what a request leg actually costs
// when gateway and replica are separate processes. CI keeps both in
// BENCH_transport.json so a regression in either substrate shows up in
// the same diff.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>

#include "bench_json.h"
#include "net/lan.h"
#include "net/udp_transport.h"
#include "sim/simulator.h"

namespace {

using namespace aqua;

constexpr int kPings = 200;

/// Mean modelled RTT through the simulated Lan (virtual microseconds).
double sim_rtt_us() {
  sim::Simulator sim;
  net::LanConfig cfg;  // defaults: the config every experiment uses
  net::Lan lan{sim, Rng{1}, cfg};

  EndpointId echo{};
  echo = lan.create_endpoint(HostId{2}, [&](EndpointId from, const net::Payload&) {
    lan.unicast(echo, from, net::Payload::make(std::string{"pong"}, 100));
  });
  int completed = 0;
  TimePoint ping_sent{};
  Duration total{};
  EndpointId pinger{};
  pinger = lan.create_endpoint(HostId{1}, [&](EndpointId, const net::Payload&) {
    total += sim.now() - ping_sent;
    if (++completed < kPings) {
      ping_sent = sim.now();
      lan.unicast(pinger, echo, net::Payload::make(std::string{"ping"}, 100));
    }
  });
  ping_sent = sim.now();
  lan.unicast(pinger, echo, net::Payload::make(std::string{"ping"}, 100));
  sim.run();
  return static_cast<double>(count_us(total)) / kPings;
}

/// Mean wall-clock RTT through kernel UDP on loopback (microseconds).
double udp_rtt_us(std::uint64_t& retransmits) {
  net::UdpTransport udp;

  EndpointId echo{};
  echo = udp.create_endpoint(HostId{2}, [&](EndpointId from, const net::Payload&) {
    udp.unicast(echo, from, net::Payload::make(std::string{"pong"}, 100));
  });
  std::mutex mutex;
  std::condition_variable cv;
  int received = 0;
  const EndpointId pinger =
      udp.create_endpoint(HostId{1}, [&](EndpointId, const net::Payload&) {
        std::lock_guard lock(mutex);
        ++received;
        cv.notify_one();
      });

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPings; ++i) {
    udp.unicast(pinger, echo, net::Payload::make(std::string{"ping"}, 100));
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return received > i; });
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  retransmits = udp.messages_retransmitted();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()) /
         kPings;
}

}  // namespace

int main() {
  std::printf("=== Transport round-trip: simulated Lan vs kernel UDP ===\n");
  std::printf("%d sequential ping-pongs per backend\n\n", kPings);

  const double sim_us = sim_rtt_us();
  std::uint64_t retransmits = 0;
  const double udp_us = udp_rtt_us(retransmits);

  std::printf("%-24s %12.1f us  (virtual time, modelled delay)\n", "sim Lan RTT", sim_us);
  std::printf("%-24s %12.1f us  (wall clock, loopback sockets)\n", "udp loopback RTT", udp_us);
  std::printf("%-24s %12llu\n", "udp retransmits", static_cast<unsigned long long>(retransmits));

  aqua::bench::write_bench_json(
      "BENCH_transport.json", "transport_roundtrip",
      {{"sim_rtt_us", sim_us, "us"},
       {"udp_rtt_us", udp_us, "us"},
       {"udp_retransmits", static_cast<double>(retransmits), "count"}});
  return 0;
}
