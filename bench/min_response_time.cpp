// §6 micro-measurement: "For a minimum-sized request having negligible
// service time, the minimum value we achieved for the response time was
// about 3.5 milliseconds." This harness reproduces the measurement: one
// replica with zero service time, an otherwise idle LAN, and reports the
// response-time distribution of minimum-sized requests.
#include <cstdio>

#include "gateway/system.h"

int main() {
  using namespace aqua;
  using namespace aqua::gateway;

  std::printf("=== Minimum response time (SS6 text) ===\n");
  std::printf("1 replica, zero service time, idle LAN, 200 minimum-sized requests\n\n");

  SystemConfig cfg;
  cfg.seed = 42;
  AquaSystem system{cfg};
  system.add_replica(replica::make_sampled_service(stats::make_constant(Duration::zero())));

  ClientWorkload workload;
  workload.total_requests = 200;
  workload.think_time = stats::make_constant(msec(20));
  ClientApp& app = system.add_client(core::QosSpec{msec(100), 0.0}, workload);
  system.run_until_clients_done(sec(120));

  const auto report = app.report();
  std::printf("requests: %zu answered: %zu\n", report.requests, report.answered);
  std::printf("response time (ms): min %.3f  p50 %.3f  p99 %.3f  max %.3f\n",
              report.response_times_ms.summary().min(), report.response_times_ms.quantile(0.5),
              report.response_times_ms.quantile(0.99), report.response_times_ms.summary().max());
  std::printf("\npaper: minimum response time ~3.5ms for a minimum-sized request\n");
  std::printf("(the LAN model's stack/wire constants are calibrated to that figure)\n");
  return 0;
}
