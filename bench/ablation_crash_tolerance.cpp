// Ablation of the Equation 3 design choice: excluding the best replica m0
// from the feasibility product so the selected set survives a single
// member crash. crash_tolerance k=0 disables the trick (plain greedy),
// k=1 is the paper's Algorithm 1, k=2 the multi-crash extension (SS5.3.2:
// "it should be simple to extend the above algorithm to handle multiple
// failures").
//
// Scenario: the favourite replica(s) crash mid-run. With k=0 the greedy
// set is often just the favourite, so its crash costs the in-flight
// requests AND every request until the view change. With k>=1 a backup is
// always on board.
#include <cstdio>
#include <vector>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  double failure_prob = 0.0;
  double cost = 0.0;
  double abandoned = 0.0;
};

Outcome run(std::size_t crash_tolerance, std::size_t crashes, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  AquaSystem system{cfg};
  // Two clear favourites, then four adequate replicas.
  std::vector<replica::ReplicaServer*> favourites;
  favourites.push_back(&system.add_replica(
      replica::make_sampled_service(stats::make_truncated_normal(msec(30), msec(5)))));
  favourites.push_back(&system.add_replica(
      replica::make_sampled_service(stats::make_truncated_normal(msec(35), msec(5)))));
  for (int i = 0; i < 4; ++i) {
    system.add_replica(
        replica::make_sampled_service(stats::make_truncated_normal(msec(80), msec(15))));
  }

  HandlerConfig handler_cfg;
  handler_cfg.selection.crash_tolerance = crash_tolerance;

  ClientWorkload workload;
  workload.total_requests = 60;
  workload.think_time = stats::make_constant(msec(250));
  ClientApp& app = system.add_client(core::QosSpec{msec(250), 0.9}, workload, handler_cfg);

  system.simulator().schedule_after(sec(4), [favourites, crashes] {
    for (std::size_t i = 0; i < crashes && i < favourites.size(); ++i) {
      favourites[i]->crash_host();
    }
  });
  system.run_until_clients_done(sec(120));
  const auto report = app.report();
  return {report.failure_probability(), report.mean_redundancy(),
          static_cast<double>(app.abandoned())};
}

Outcome average(std::size_t crash_tolerance, std::size_t crashes) {
  Outcome total;
  constexpr std::size_t kSeeds = 10;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(crash_tolerance, crashes, 300 + s);
    total.failure_prob += o.failure_prob / kSeeds;
    total.cost += o.cost / kSeeds;
    total.abandoned += o.abandoned / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Ablation: crash tolerance k (Equation 3 protection) ===\n");
  std::printf("6 replicas, deadline 250ms, Pc=0.9, 60 requests; favourites crash at t=4s\n\n");
  std::printf("%-6s %-14s %18s %10s %12s\n", "k", "crashes", "failure prob", "cost",
              "abandoned");
  for (std::size_t crashes : {std::size_t{1}, std::size_t{2}}) {
    for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
      const Outcome o = average(k, crashes);
      std::printf("%-6zu %-14zu %18.3f %10.2f %12.2f\n", k, crashes, o.failure_prob, o.cost,
                  o.abandoned);
    }
    std::printf("\n");
  }
  std::printf("expected shape: k=0 suffers most from the crash of its (usually sole)\n");
  std::printf("selected favourite; k=1 masks a single crash (the paper's guarantee);\n");
  std::printf("k=2 also masks the double crash, at a slightly higher replica cost.\n");
  return 0;
}
