// Machine-readable bench output: a flat JSON array of
//   {"bench": ..., "metric": ..., "value": ..., "unit": ..., "commit": ...}
// rows, one file per bench binary, so CI can diff headline numbers across
// commits without scraping stdout tables.
//
// The commit stamp comes from AQUA_BENCH_COMMIT (tools/run_checks.sh sets
// it from `git rev-parse`); AQUA_BENCH_JSON_DIR redirects the output
// directory (default: current working directory).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace aqua::bench {

struct BenchMetric {
  std::string metric;
  double value = 0.0;
  std::string unit;
};

/// Resolve `file_name` against AQUA_BENCH_JSON_DIR (if set).
inline std::string bench_json_path(const std::string& file_name) {
  const char* dir = std::getenv("AQUA_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return file_name;
  return std::string{dir} + "/" + file_name;
}

inline bool write_bench_json(const std::string& file_name, const std::string& bench,
                             const std::vector<BenchMetric>& rows) {
  const char* commit_env = std::getenv("AQUA_BENCH_COMMIT");
  const std::string commit = (commit_env != nullptr && *commit_env != '\0') ? commit_env
                                                                            : "unknown";
  const std::string path = bench_json_path(file_name);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  out << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char value[40];
    std::snprintf(value, sizeof value, "%.9g", rows[i].value);
    out << (i == 0 ? "" : ",") << "\n  {\"bench\":\"" << bench << "\",\"metric\":\""
        << rows[i].metric << "\",\"value\":" << value << ",\"unit\":\"" << rows[i].unit
        << "\",\"commit\":\"" << commit << "\"}";
  }
  out << "\n]\n";
  std::printf("wrote %zu bench metrics to %s\n", rows.size(), path.c_str());
  return out.good();
}

}  // namespace aqua::bench
