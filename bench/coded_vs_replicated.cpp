// MDS-coded dispatch vs informed replication.
//
// Duffy & Shneer argue k-of-n MDS coding beats whole-request replication
// for completion times *without* querying queue state: n chunk-requests of
// 1/k-th the work each, any k distinct chunk-replies reconstruct the
// result. Our gateway HAS queue state, so the experiment the paper cannot
// run is the three-way comparison:
//
//   replicated     — the paper's Algorithm 1: informed selection, whole
//                    copies, first reply wins.
//   coded          — blind coded dispatch: n random replicas, k-of-n
//                    chunk completion, no queue-state input.
//   coded_informed — the hybrid: replicas ranked by the load-compensated
//                    score (P(t) charged with queue EWMA + own in-flight,
//                    two-choice spread among near-equals) and the best n
//                    receive the chunks. The original pure-P(t) ranking
//                    LOST to blind placement at high load — every client
//                    herded onto the same top-ranked replicas — which is
//                    exactly the inversion the score exists to fix; the
//                    high_load.informed_beats_blind row gates on it.
//
// Each mode runs the same seeds at three load levels (LoadModulation
// scales service draws without changing rng consumption, so workloads are
// identical across modes) and reports replica time consumed per request,
// timely fraction, redundancy, and chunk counts.
//
// The bench also pins the tentpole's identity guarantee: an explicit
// CompletionSpec::first_of_n() dispatch config must reproduce the
// fig4/fig5 sweep points bit-identically to the default config — the
// completion-predicate machinery may not perturb the paper policy.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "gateway/system.h"
#include "paper_experiment.h"
#include "replica/service_model.h"
#include "stats/variates.h"

namespace {

using namespace aqua;
using aqua::bench::BenchMetric;

struct LoadSpec {
  const char* name;
  /// Service-time multiplier applied through LoadModulation.
  double service_factor;
  std::size_t clients;
  Duration think_time;
};

struct ModeSpec {
  const char* name;
  core::DispatchConfig dispatch;
  /// Null = the paper's Algorithm 1 (informed dynamic selection).
  core::PolicyPtr (*policy_factory)() = nullptr;
};

struct ModeResult {
  std::size_t requests = 0;
  std::size_t timely = 0;
  std::size_t answered = 0;
  double replica_busy_ms = 0.0;
  double redundancy_sum = 0.0;
  std::uint64_t chunks_received = 0;
  std::uint64_t coded_requests = 0;

  [[nodiscard]] double replica_ms_per_request() const {
    return requests > 0 ? replica_busy_ms / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double timely_fraction() const {
    return requests > 0 ? static_cast<double>(timely) / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double mean_redundancy() const {
    return requests > 0 ? redundancy_sum / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double mean_chunks() const {
    return coded_requests > 0
               ? static_cast<double>(chunks_received) / static_cast<double>(coded_requests)
               : 0.0;
  }
};

constexpr std::size_t kReplicas = 7;
constexpr std::size_t kRequestsPerClient = 60;
/// n chunk-requests, any kCodeK distinct chunk-replies complete.
constexpr std::size_t kCodeN = 4;
constexpr std::size_t kCodeK = 2;

core::PolicyPtr make_blind_policy() { return core::make_random_policy(kCodeN); }

core::PolicyPtr make_informed_policy() {
  core::LoadScoreConfig load;
  load.enabled = true;
  return core::make_static_k_policy(kCodeN, {}, load);
}

/// Algorithm 1 with the LoadScoreConfig present but DISABLED and every
/// inert knob set to garbage — must be bit-identical to the default
/// policy, proving the score machinery cannot leak into the paper path.
core::PolicyPtr make_score_off_policy() {
  core::SelectionConfig config;
  config.load.enabled = false;
  config.load.queue_weight = 99.0;
  config.load.outstanding_weight = 99.0;
  config.load.trend_weight = 99.0;
  config.load.p2c_epsilon = 1.0;
  config.load.liveness_factor = 0.001;
  return core::make_dynamic_policy(config);
}

ModeResult run_mode(const LoadSpec& load, const ModeSpec& mode, std::size_t seeds,
                    std::uint64_t base_seed) {
  ModeResult result;
  for (std::size_t s = 0; s < seeds; ++s) {
    gateway::SystemConfig sys_cfg;
    sys_cfg.seed = base_seed + s;
    gateway::AquaSystem system{sys_cfg};

    auto modulation = std::make_shared<stats::LoadModulation>();
    modulation->set_factor(load.service_factor);
    for (std::size_t r = 0; r < kReplicas; ++r) {
      system.add_replica(replica::make_sampled_service(stats::make_modulated_sampler(
          stats::make_truncated_normal(msec(100), msec(50)), modulation)));
    }

    gateway::HandlerConfig handler_cfg;
    handler_cfg.repository.window_size = 5;
    handler_cfg.dispatch = mode.dispatch;

    gateway::ClientWorkload workload;
    workload.total_requests = kRequestsPerClient;
    workload.think_time = stats::make_constant(load.think_time);
    for (std::size_t c = 0; c < load.clients; ++c) {
      workload.start_delay = msec(static_cast<std::int64_t>(37 * c));
      system.add_client(core::QosSpec{msec(300), 0.9}, workload, handler_cfg,
                        mode.policy_factory != nullptr ? mode.policy_factory() : nullptr);
    }

    system.run_until_clients_done(sec(1200));

    for (const trace::ClientRunReport& report : system.reports()) {
      result.requests += report.requests;
      result.timely += report.requests - report.timing_failures;
      result.answered += report.answered;
      if (!report.redundancy.empty()) {
        result.redundancy_sum += report.redundancy.summary().mean() *
                                 static_cast<double>(report.redundancy.count());
      }
    }
    for (const replica::ReplicaServer* server : system.replicas()) {
      result.replica_busy_ms += to_ms(server->total_busy_time());
    }
    for (gateway::ClientApp* app : system.clients()) {
      for (const gateway::RequestRecord& record : app->handler().history()) {
        if (record.code_k == 0 || record.probe) continue;
        ++result.coded_requests;
        result.chunks_received += record.chunks_received;
      }
    }
  }
  return result;
}

/// Exact comparison: the identity claim is bit-level, not approximate.
bool sweeps_identical(const std::vector<aqua::bench::SweepPoint>& a,
                      const std::vector<aqua::bench::SweepPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].deadline != b[i].deadline ||
        a[i].requested_probability != b[i].requested_probability ||
        a[i].mean_selected != b[i].mean_selected ||
        a[i].failure_probability != b[i].failure_probability ||
        a[i].mean_response_ms != b[i].mean_response_ms || a[i].requests != b[i].requests) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace aqua;
  using namespace aqua::bench;

  std::size_t seeds = 5;
  if (const char* s = std::getenv("AQUA_BENCH_SEEDS")) seeds = std::strtoul(s, nullptr, 10);

  const LoadSpec loads[] = {
      // ~25% utilisation: every queue is short, selection has little to
      // exploit — coding's smaller per-copy demand is the whole story.
      {"low_load", 1.0, 4, msec(500)},
      // The contested middle: queues form intermittently, so informed
      // chunk placement starts separating from blind placement.
      {"mid_load", 1.8, 4, msec(250)},
      // Service scaled 2.5x against the same deadline: whole-copy
      // redundancy queues behind itself; chunks are 1/k the burden.
      {"high_load", 2.5, 4, msec(100)},
  };

  core::DispatchConfig coded;
  coded.completion = core::CompletionSpec::k_of_n(kCodeK);

  const ModeSpec modes[] = {
      {"replicated", core::DispatchConfig{}, nullptr},  // the paper's Algorithm 1
      {"coded", coded, make_blind_policy},
      {"coded_informed", coded, make_informed_policy},
  };

  std::printf("=== coded vs replicated: dispatch mode x load ===\n");
  std::printf("%zu replicas, %zu clients x %zu requests, deadline 300ms Pc 0.9, "
              "code %zu-of-%zu, %zu seeds\n\n",
              kReplicas, loads[0].clients, kRequestsPerClient, kCodeK, kCodeN, seeds);

  std::vector<BenchMetric> rows;
  double high_load_blind_timely = -1.0;
  double high_load_informed_timely = -1.0;
  for (std::size_t li = 0; li < 3; ++li) {
    const LoadSpec& load = loads[li];
    std::printf("--- %s (service x%.1f, think %.0fms) ---\n", load.name, load.service_factor,
                to_ms(load.think_time));
    std::printf("%-18s %14s %8s %8s %8s\n", "mode", "replica_ms/req", "timely", "mean_K",
                "chunks");
    double baseline_replica_ms = 0.0;
    for (const ModeSpec& mode : modes) {
      const ModeResult r = run_mode(load, mode, seeds, 8200 + 100 * li);
      if (li == 2 && std::string(mode.name) == "coded") high_load_blind_timely = r.timely_fraction();
      if (li == 2 && std::string(mode.name) == "coded_informed") {
        high_load_informed_timely = r.timely_fraction();
      }
      std::printf("%-18s %14.1f %8.3f %8.2f %8.2f\n", mode.name, r.replica_ms_per_request(),
                  r.timely_fraction(), r.mean_redundancy(), r.mean_chunks());
      if (mode.dispatch.is_default()) baseline_replica_ms = r.replica_ms_per_request();

      const std::string prefix = std::string(load.name) + "." + mode.name;
      rows.push_back({prefix + ".replica_ms_per_request", r.replica_ms_per_request(), "ms"});
      rows.push_back({prefix + ".timely_fraction", r.timely_fraction(), "fraction"});
      rows.push_back({prefix + ".mean_redundancy", r.mean_redundancy(), "copies"});
      rows.push_back({prefix + ".mean_chunks_received", r.mean_chunks(), "chunks"});
      if (!mode.dispatch.is_default()) {
        rows.push_back({prefix + ".replica_savings_vs_replicated",
                        baseline_replica_ms - r.replica_ms_per_request(), "ms"});
      }
    }
    std::printf("\n");
  }

  // The herd gate: with the load-compensated score, informed chunk
  // placement must be at least as timely as blind spreading at high load
  // (the PR-7 inversion, now fixed).
  const bool informed_ok = high_load_informed_timely + 1e-12 >= high_load_blind_timely;
  rows.push_back({"high_load.informed_beats_blind", informed_ok ? 1.0 : 0.0, "bool"});
  std::printf("high-load informed (%.3f) vs blind (%.3f): %s\n\n", high_load_informed_timely,
              high_load_blind_timely, informed_ok ? "PASS" : "FAIL (herding inversion)");

  // Identity gate: the default config and an explicit first_of_n spec
  // must produce the same fig4/fig5 sweep points to the last bit. Same
  // for a dynamic policy whose LoadScoreConfig is present-but-disabled:
  // the score machinery may not perturb the paper path.
  std::printf("--- first_of_n + load-score-off identity on the fig4/fig5 harness ---\n");
  PaperSetup default_setup;
  default_setup.seeds = std::min<std::size_t>(seeds, 3);
  PaperSetup explicit_setup = default_setup;
  explicit_setup.dispatch.completion = core::CompletionSpec::first_of_n();
  const std::vector<double> probabilities = {0.9, 0.0};
  bool identical = true;
  bool score_off_identical = true;
  for (double pc : probabilities) {
    for (std::int64_t t = 100; t <= 200; t += 50) {
      const SweepPoint lhs = run_point(default_setup, msec(t), pc);
      const SweepPoint rhs = run_point(explicit_setup, msec(t), pc);
      const SweepPoint off = run_point(default_setup, msec(t), pc, make_score_off_policy);
      if (!sweeps_identical({lhs}, {rhs})) identical = false;
      if (!sweeps_identical({lhs}, {off})) score_off_identical = false;
      std::printf("Pc=%.1f deadline=%3lldms  K=%.4f fail=%.4f  %s %s\n", pc,
                  static_cast<long long>(t), lhs.mean_selected, lhs.failure_probability,
                  sweeps_identical({lhs}, {rhs}) ? "identical" : "DIVERGED",
                  sweeps_identical({lhs}, {off}) ? "score-off-identical" : "SCORE-OFF-DIVERGED");
    }
  }
  rows.push_back({"fig.first_of_n_identity", identical ? 1.0 : 0.0, "bool"});
  rows.push_back({"fig.load_score_off_identity", score_off_identical ? 1.0 : 0.0, "bool"});
  std::printf("first_of_n identity: %s\n", identical ? "PASS" : "FAIL");
  std::printf("load-score-off identity: %s\n\n", score_off_identical ? "PASS" : "FAIL");

  std::printf("expectation: coded modes spend ~n/k of a full copy per request and lower\n"
              "replica_ms/req under load. pure-P(t) informed placement herds under\n"
              "saturation and loses to blind spreading; the load-compensated score\n"
              "spreads near-equal candidates and keeps informed placement ahead.\n");
  write_bench_json("BENCH_coded.json", "coded_vs_replicated", rows);
  return (identical && score_off_identical && informed_ok) ? 0 : 1;
}
