// Shared harness for the paper's §6 evaluation setup:
//
//   "we used two clients that ran on different machines and independently
//    issued requests to the same service with a one second delay between
//    receiving a response and issuing the next request. The number of
//    server replicas available for selection during each experiment was
//    seven. ... we simulated the load on the servers by having each
//    replica respond to a request after a delay that was normally
//    distributed with a mean of 100 milliseconds and a variance of 50
//    milliseconds. In every run, each of the two clients issued fifty
//    requests to the service. One of the clients requested a deadline of
//    200 milliseconds in each run and specified that this deadline be met
//    with a probability >= 0. The second client requested a different
//    deadline in each run."
//
// Figures 4 and 5 plot, for the second client, the average number of
// selected replicas and the observed timing-failure probability over a
// deadline sweep of 100..200ms at requested probabilities 0.9 / 0.5 / 0.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "core/policies.h"
#include "trace/report.h"

namespace aqua::bench {

struct PaperSetup {
  std::size_t replicas = 7;
  Duration service_mean = msec(100);
  /// The paper says "a variance of 50 milliseconds"; read as the spread
  /// (sigma) of the normal, truncated at zero. See EXPERIMENTS.md for the
  /// sigma^2 = 50 ms^2 sensitivity check.
  Duration service_spread = msec(50);
  std::size_t requests_per_client = 50;
  Duration think_time = sec(1);
  std::size_t window_size = 5;
  /// Paper runs were single 50-request runs; we average over several
  /// seeds to smooth the plots.
  std::size_t seeds = 10;
  std::uint64_t base_seed = 1000;
  /// First client's fixed QoS (deadline 200ms, probability 0).
  Duration background_deadline = msec(200);
  /// Dispatch configuration for both clients. The default reproduces the
  /// paper's full-K multicast + first-reply delivery; benches use it to
  /// verify an explicit CompletionSpec::first_of_n() stays bit-identical
  /// and to sweep the coded modes over the same figure harness.
  core::DispatchConfig dispatch{};
};

struct SweepPoint {
  Duration deadline;
  double requested_probability = 0.0;
  /// Figure 4's y axis: average |K| over all requests and seeds.
  double mean_selected = 0.0;
  /// Figure 5's y axis: timing failures / requests.
  double failure_probability = 0.0;
  double mean_response_ms = 0.0;
  std::size_t requests = 0;
};

/// Run the two-client experiment at one (deadline, Pc) for the second
/// client, aggregated over `setup.seeds` independent runs.
/// `policy_factory` selects the algorithm under test (null = Algorithm 1).
using PolicyFactory = core::PolicyPtr (*)();

SweepPoint run_point(const PaperSetup& setup, Duration deadline, double requested_probability,
                     PolicyFactory policy_factory = nullptr);

/// The full figure sweep: deadlines 100..200ms step `step_ms` for each
/// requested probability in `probabilities`.
std::vector<SweepPoint> run_sweep(const PaperSetup& setup,
                                  const std::vector<double>& probabilities,
                                  std::int64_t step_ms = 10);

/// Render the sweep as the figure's table: one row per deadline, one
/// column per requested probability. `select_failures` picks Figure 5's
/// metric instead of Figure 4's.
void print_sweep_table(const std::vector<SweepPoint>& sweep,
                       const std::vector<double>& probabilities, bool select_failures);

/// Write the sweep as CSV under $AQUA_BENCH_CSV (if set); returns whether
/// a file was written.
bool maybe_write_csv(const std::vector<SweepPoint>& sweep, const char* name);

}  // namespace aqua::bench
