// Baseline comparison (motivated by SS1/SS7): the paper argues that
// single-replica selection schemes — nearest / best-historical-mean /
// probing — cannot tolerate a replica failing mid-request, and that
// static redundancy wastes capacity. This harness runs Algorithm 1
// against those baselines on the identical workload, fault-free and with
// a mid-run crash of the most attractive replica, reporting the observed
// timing-failure probability and the replica cost (mean |K|).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Row {
  std::string name;
  double failure_prob_ok = 0.0;    // fault-free
  double cost_ok = 0.0;            // mean replicas per request
  double failure_prob_crash = 0.0; // best replica crashes mid-run
  double cost_crash = 0.0;
};

struct Scenario {
  bool crash_best = false;
};

std::pair<double, double> run_policy(const std::function<core::PolicyPtr()>& factory,
                                     const Scenario& scenario, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  AquaSystem system{cfg};
  // Replica 1 is the clear favourite (fast); the rest are usable but
  // slower — so every policy concentrates on replica 1, and its crash is
  // the worst case.
  auto& best = system.add_replica(
      replica::make_sampled_service(stats::make_truncated_normal(msec(40), msec(10))));
  for (int i = 0; i < 5; ++i) {
    system.add_replica(
        replica::make_sampled_service(stats::make_truncated_normal(msec(90), msec(25))));
  }

  ClientWorkload workload;
  workload.total_requests = 50;
  workload.think_time = stats::make_constant(msec(300));
  ClientApp& app = system.add_client(core::QosSpec{msec(130), 0.9}, workload, HandlerConfig{},
                                     factory ? factory() : nullptr);

  if (scenario.crash_best) {
    system.simulator().schedule_after(sec(5), [&best] { best.crash_host(); });
  }
  system.run_until_clients_done(sec(120));
  const auto report = app.report();
  return {report.failure_probability(), report.mean_redundancy()};
}

Row evaluate(const std::string& name, const std::function<core::PolicyPtr()>& factory) {
  Row row;
  row.name = name;
  constexpr std::size_t kSeeds = 8;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const auto ok = run_policy(factory, Scenario{false}, 100 + s);
    const auto crash = run_policy(factory, Scenario{true}, 200 + s);
    row.failure_prob_ok += ok.first / kSeeds;
    row.cost_ok += ok.second / kSeeds;
    row.failure_prob_crash += crash.first / kSeeds;
    row.cost_crash += crash.second / kSeeds;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("=== Baseline comparison: Algorithm 1 vs single-replica & static schemes ===\n");
  std::printf("6 replicas (one clearly fastest), deadline 130ms, Pc=0.9, 50 requests;\n");
  std::printf("crash scenario: the fastest replica's host dies mid-run\n\n");

  std::vector<Row> rows;
  rows.push_back(evaluate("dynamic (Algorithm 1)", [] { return core::make_dynamic_policy(); }));
  rows.push_back(evaluate("best-probability x1", [] { return core::make_best_probability_policy(); }));
  rows.push_back(evaluate("fastest-mean x1 [19]", [] { return core::make_fastest_mean_policy(); }));
  rows.push_back(evaluate("random-2", [] { return core::make_random_policy(2); }));
  rows.push_back(evaluate("round-robin-2", [] { return core::make_round_robin_policy(2); }));
  rows.push_back(evaluate("static-top-2", [] { return core::make_static_k_policy(2); }));
  rows.push_back(evaluate("all-replicas", [] { return core::make_all_replicas_policy(); }));

  std::printf("%-24s %14s %10s %16s %12s\n", "policy", "fail(no-fault)", "cost", "fail(crash)",
              "cost(crash)");
  for (const Row& row : rows) {
    std::printf("%-24s %14.3f %10.2f %16.3f %12.2f\n", row.name.c_str(), row.failure_prob_ok,
                row.cost_ok, row.failure_prob_crash, row.cost_crash);
  }
  std::printf("\nexpected shape: single-replica baselines spike under the crash (requests\n");
  std::printf("in flight to the dead replica are lost until the view change), while\n");
  std::printf("Algorithm 1 masks the crash at ~2x replica cost; all-replicas masks it\n");
  std::printf("too but at ~3x the cost of the dynamic scheme.\n");
  return 0;
}
