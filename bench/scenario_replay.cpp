// Fault-scenario replay harness: runs each catalog script (the §6 fault
// cases — network stress, host load transition, crash/restart, and the
// composite spike+crash+ramp acceptance scenario) over a seed sweep and
// reports the client-visible damage: timing-failure probability, mean
// redundancy and QoS-violation callbacks, plus the fault timeline length.
// The same scripts back the chaos test tier (tests/fault_*), so numbers
// printed here are directly comparable to the golden expectations there.
#include <cstdio>
#include <vector>

#include "fault/catalog.h"
#include "fault/scenario_runner.h"
#include "gateway/system.h"
#include "replica/service_model.h"
#include "stats/variates.h"

namespace {

using namespace aqua;
using namespace aqua::fault;

struct Outcome {
  double failure_prob = 0.0;
  double mean_redundancy = 0.0;
  double violations = 0.0;
  double timeline_events = 0.0;
};

Outcome run_script(const ScenarioScript& script, std::uint64_t seed) {
  gateway::SystemConfig cfg;
  cfg.seed = seed;
  gateway::AquaSystem system{cfg};

  ScenarioHooks hooks;
  for (int i = 0; i < 4; ++i) {
    auto modulation = std::make_shared<stats::LoadModulation>();
    hooks.replica_load.push_back(modulation);
    system.add_replica(replica::make_modulated_service(
        replica::make_sampled_service(stats::make_truncated_normal(msec(60), msec(20))),
        modulation));
  }

  gateway::ClientWorkload workload;
  workload.total_requests = 40;
  workload.think_time = stats::make_constant(msec(200));
  gateway::ClientApp& app = system.add_client(core::QosSpec{msec(150), 0.8}, workload);

  ScenarioRunner runner{system, script, std::move(hooks), seed};
  runner.run(sec(600));

  const auto report = app.report();
  Outcome out;
  out.failure_prob = report.failure_probability();
  out.mean_redundancy = report.mean_redundancy();
  out.violations = static_cast<double>(report.qos_violation_callbacks);
  out.timeline_events = static_cast<double>(runner.timeline().size());
  return out;
}

}  // namespace

int main() {
  const std::vector<ScenarioScript> scripts = {
      spike_crash_ramp_script(),
      network_stress_script(),
      host_load_script(0),
      crash_restart_script(0),
  };
  constexpr std::uint64_t kSeeds = 5;

  std::printf("# scenario_replay: catalog scripts x %llu seeds, 4 replicas, 1 client\n",
              static_cast<unsigned long long>(kSeeds));
  std::printf("%-20s %12s %12s %12s %12s\n", "scenario", "fail_prob", "redundancy",
              "qos_cbs", "timeline_ev");
  for (const ScenarioScript& script : scripts) {
    Outcome total;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Outcome one = run_script(script, seed);
      total.failure_prob += one.failure_prob / kSeeds;
      total.mean_redundancy += one.mean_redundancy / kSeeds;
      total.violations += one.violations / kSeeds;
      total.timeline_events += one.timeline_events / kSeeds;
    }
    std::printf("%-20s %12.4f %12.2f %12.2f %12.1f\n", script.name.c_str(), total.failure_prob,
                total.mean_redundancy, total.violations, total.timeline_events);
  }
  return 0;
}
