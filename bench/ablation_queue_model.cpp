// Ablation of the queue-backlog extension. The paper's repository stores
// the replica's current queue length (SS5.2) but the published model only
// uses the windowed queuing-delay pmf. Our ModelConfig::queue_backlog_shift
// extension additionally shifts F by queue_length x mean(S), reacting to
// backlog the window has not seen yet.
//
// Scenario: many aggressive clients drive the queues, so the live queue
// length is fresher information than the delayed W window.
#include <cstdio>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  double failure_prob = 0.0;
  double cost = 0.0;
};

Outcome run(bool backlog_shift, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  AquaSystem system{cfg};
  for (int i = 0; i < 5; ++i) {
    system.add_replica(
        replica::make_sampled_service(stats::make_truncated_normal(msec(40), msec(10))));
  }

  HandlerConfig handler_cfg;
  handler_cfg.model.queue_backlog_shift = backlog_shift;

  // Six clients, short think times: server queues build and drain.
  ClientWorkload workload;
  workload.total_requests = 40;
  workload.think_time = stats::make_exponential(msec(60));
  std::vector<ClientApp*> apps;
  for (int c = 0; c < 6; ++c) {
    ClientWorkload w = workload;
    w.start_delay = msec(17 * c);
    apps.push_back(&system.add_client(core::QosSpec{msec(220), 0.9}, w, handler_cfg));
  }
  system.run_until_clients_done(sec(240));

  Outcome outcome;
  for (ClientApp* app : apps) {
    const auto report = app->report();
    outcome.failure_prob += report.failure_probability() / static_cast<double>(apps.size());
    outcome.cost += report.mean_redundancy() / static_cast<double>(apps.size());
  }
  return outcome;
}

Outcome average(bool backlog_shift) {
  Outcome total;
  constexpr std::size_t kSeeds = 6;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(backlog_shift, 500 + s);
    total.failure_prob += o.failure_prob / kSeeds;
    total.cost += o.cost / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Ablation: queue-backlog shift (extension beyond the paper's model) ===\n");
  std::printf("5 replicas (~40ms service), 6 bursty clients, deadline 220ms, Pc=0.9\n\n");
  const Outcome paper = average(false);
  const Outcome extended = average(true);
  std::printf("%-28s %18s %10s\n", "model", "failure prob", "cost");
  std::printf("%-28s %18.3f %10.2f\n", "paper (windowed W only)", paper.failure_prob, paper.cost);
  std::printf("%-28s %18.3f %10.2f\n", "extended (+ queue shift)", extended.failure_prob,
              extended.cost);
  std::printf("\nfinding: the shift reacts to queue lengths that are already stale by\n");
  std::printf("selection time (the backlog drains while the request travels), so it\n");
  std::printf("mostly inflates redundancy without buying fewer failures — evidence FOR\n");
  std::printf("the paper's choice of using only the windowed W pmf in the model, even\n");
  std::printf("though the repository stores the live queue length (SS5.2).\n");
  return 0;
}
