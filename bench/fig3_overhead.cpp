// Figure 3: "Overhead of replica selection algorithm" — wall-clock cost
// of one scheduler decision (distribution computation + Algorithm 1) as a
// function of the number of replicas (2..8) for sliding windows of 5, 10
// and 20.
//
// Paper (700MHz-era Linux): 100..900 microseconds, growing with both n
// and l; "Computing the distribution function contributes to 90% of these
// overheads while selecting the replica subset using Algorithm 1
// contributes to the remaining 10%." Absolute numbers on modern hardware
// are far smaller; the shape (monotone in n and l; distribution dominates)
// is the reproduced result.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/response_time_model.h"
#include "core/selection.h"

namespace {

using namespace aqua;

std::vector<core::ReplicaObservation> synthetic_repository(std::size_t replicas,
                                                           std::size_t window,
                                                           std::uint64_t seed = 7) {
  Rng rng{seed};
  std::vector<core::ReplicaObservation> obs;
  for (std::size_t i = 0; i < replicas; ++i) {
    core::ReplicaObservation o;
    o.id = ReplicaId{i + 1};
    for (std::size_t j = 0; j < window; ++j) {
      o.service_samples.push_back(msec(rng.uniform_int(60, 160)));
      o.queuing_samples.push_back(msec(rng.uniform_int(0, 40)));
    }
    o.gateway_delay = usec(rng.uniform_int(1000, 5000));
    obs.push_back(std::move(o));
  }
  return obs;
}

const core::QosSpec kQos{msec(150), 0.9};

void BM_SelectionDecision(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto repository = synthetic_repository(replicas, window);
  core::ReplicaSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(repository, kQos));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

void register_benchmarks() {
  for (std::int64_t window : {5, 10, 20}) {
    for (std::int64_t replicas = 2; replicas <= 8; ++replicas) {
      benchmark::RegisterBenchmark("fig3/selection_overhead", BM_SelectionDecision)
          ->Args({replicas, window});
    }
  }
}

/// Measure the 90/10 split: distribution computation vs subset selection.
void print_cost_split() {
  constexpr int kIterations = 2000;
  std::printf("\nCost split (distribution computation vs subset selection), n=7, l=5:\n");
  const auto repository = synthetic_repository(7, 5);
  const core::ResponseTimeModel model;

  using Clock = std::chrono::steady_clock;
  // Phase 1: distribution computation only.
  auto t0 = Clock::now();
  double sink = 0.0;
  for (int i = 0; i < kIterations; ++i) {
    for (const auto& obs : repository) sink += model.probability_by(obs, kQos.deadline);
  }
  auto t1 = Clock::now();
  // Phase 2: the full decision.
  core::ReplicaSelector selector;
  std::size_t sink2 = 0;
  for (int i = 0; i < kIterations; ++i) {
    sink2 += selector.select(repository, kQos).selected.size();
  }
  auto t2 = Clock::now();

  const double dist_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kIterations;
  const double total_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / kIterations;
  const double select_us = total_us > dist_us ? total_us - dist_us : 0.0;
  std::printf("  distribution computation: %7.2f us/decision (%.0f%%)\n", dist_us,
              100.0 * dist_us / total_us);
  std::printf("  subset selection:         %7.2f us/decision (%.0f%%)\n", select_us,
              100.0 * select_us / total_us);
  std::printf("  total decision:           %7.2f us\n", total_us);
  std::printf("  paper: ~90%% distribution computation / ~10%% selection (Fig. 3, SS6)\n");
  if (sink < 0.0 || sink2 == 0) std::abort();  // keep the measured loops alive
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 3: overhead of the replica selection algorithm ===\n");
  std::printf("paper: 100-900us on 2001 hardware, monotone in n and window l\n\n");
  register_benchmarks();
  // Keep the default run short (the harness runs every bench binary);
  // pass an explicit --benchmark_min_time to override.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.05";
  bool user_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) user_set = true;
  }
  if (!user_set) args.push_back(min_time.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_cost_split();
  return 0;
}
