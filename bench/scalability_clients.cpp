// Scalability (§1's motivating trade-off): "We can achieve good fault
// tolerance by allocating all the available replicas to service a single
// client. However, such an approach is not scalable as it increases the
// load on all the replicas and results in higher response times for the
// remaining clients. On the other hand, assigning a single replica to
// service each client allows multiple clients to be serviced in
// parallel [but cannot survive a crash]."
//
// This harness sweeps the number of concurrent clients and compares the
// all-replicas policy, a single-replica policy, and Algorithm 1 on
// failure probability and mean response time.
#include <cstdio>
#include <functional>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  double failure_prob = 0.0;
  double mean_response_ms = 0.0;
  double cost = 0.0;
};

Outcome run(const std::function<core::PolicyPtr()>& factory, int clients, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  AquaSystem system{cfg};
  for (int i = 0; i < 6; ++i) {
    system.add_replica(
        replica::make_sampled_service(stats::make_truncated_normal(msec(60), msec(15))));
  }
  std::vector<ClientApp*> apps;
  for (int c = 0; c < clients; ++c) {
    ClientWorkload workload;
    workload.total_requests = 30;
    workload.think_time = stats::make_constant(msec(120));
    workload.start_delay = msec(13 * c);
    apps.push_back(&system.add_client(core::QosSpec{msec(250), 0.9}, workload, HandlerConfig{},
                                      factory ? factory() : nullptr));
  }
  system.run_until_clients_done(sec(600));

  Outcome outcome;
  double responses = 0.0;
  std::size_t requests = 0, failures = 0, answered = 0;
  for (ClientApp* app : apps) {
    const auto report = app->report();
    requests += report.requests;
    failures += report.timing_failures;
    if (!report.response_times_ms.empty()) {
      responses += report.response_times_ms.summary().mean() *
                   static_cast<double>(report.response_times_ms.count());
      answered += report.response_times_ms.count();
    }
    outcome.cost += report.mean_redundancy() / static_cast<double>(apps.size());
  }
  if (requests > 0) {
    outcome.failure_prob = static_cast<double>(failures) / static_cast<double>(requests);
  }
  if (answered > 0) outcome.mean_response_ms = responses / static_cast<double>(answered);
  return outcome;
}

Outcome average(const std::function<core::PolicyPtr()>& factory, int clients) {
  Outcome total;
  constexpr std::size_t kSeeds = 5;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(factory, clients, 600 + s);
    total.failure_prob += o.failure_prob / kSeeds;
    total.mean_response_ms += o.mean_response_ms / kSeeds;
    total.cost += o.cost / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Scalability: concurrent clients vs policy (SS1 trade-off) ===\n");
  std::printf("6 replicas (~60ms service), deadline 250ms, Pc=0.9, think 120ms\n\n");
  std::printf("%-8s | %-26s | %-26s | %-26s | %-26s\n", "", "dynamic (Algorithm 1)",
              "dynamic + minimal fallbk", "all-replicas", "best-probability x1");
  std::printf("%-8s | %8s %8s %6s | %8s %8s %6s | %8s %8s %6s | %8s %8s %6s\n", "clients",
              "fail", "resp ms", "cost", "fail", "resp ms", "cost", "fail", "resp ms", "cost",
              "fail", "resp ms", "cost");
  const auto minimal_factory = [] {
    core::SelectionConfig cfg;
    cfg.infeasible_fallback = core::InfeasibleFallback::kMinimalSet;
    return core::make_dynamic_policy(cfg);
  };
  for (int clients : {1, 2, 4, 8, 16}) {
    const Outcome dynamic_o = average([] { return core::make_dynamic_policy(); }, clients);
    const Outcome minimal_o = average(minimal_factory, clients);
    const Outcome all_o = average([] { return core::make_all_replicas_policy(); }, clients);
    const Outcome one_o = average([] { return core::make_best_probability_policy(); }, clients);
    std::printf(
        "%-8d | %8.3f %8.1f %6.2f | %8.3f %8.1f %6.2f | %8.3f %8.1f %6.2f | %8.3f %8.1f %6.2f\n",
        clients, dynamic_o.failure_prob, dynamic_o.mean_response_ms, dynamic_o.cost,
        minimal_o.failure_prob, minimal_o.mean_response_ms, minimal_o.cost, all_o.failure_prob,
        all_o.mean_response_ms, all_o.cost, one_o.failure_prob, one_o.mean_response_ms,
        one_o.cost);
  }
  std::printf("\nexpected shape: with few clients every policy meets the deadline; as\n");
  std::printf("clients multiply, all-replicas saturates first. Under overload, plain\n");
  std::printf("Algorithm 1 amplifies the load (a regime the paper never tested): once\n");
  std::printf("queueing makes the spec infeasible, the line-15 fallback selects ALL\n");
  std::printf("replicas, tripling its cost. The kMinimalSet fallback extension keeps the\n");
  std::printf("cost flat; at moderate overload the extra effort of the paper's fallback\n");
  std::printf("still wins individual requests, but at deep overload the lighter\n");
  std::printf("footprint fails less. The single-replica scheme scales too but has no\n");
  std::printf("crash tolerance (see baseline_comparison).\n");
  return 0;
}
