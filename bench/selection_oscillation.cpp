// Multi-gateway herding / oscillation bench (herd-safe selection).
//
// Many gateways share one replica pool. With the paper's pure-P(t)
// ranking every gateway computes the same "best" replicas from the same
// piggybacked windows, dumps its requests there, watches those queues
// blow up in the next perf sample, and stampedes to the runner-up — a
// sawtooth of queue-length oscillation that the per-gateway model never
// predicted. The load-compensated score (LoadScoreConfig) charges each
// replica's smoothed queue, own in-flight count, and queue growth trend
// against the deadline before ranking, and power-of-two-choices spreads
// near-equal candidates, so the same information produces anti-herding
// placement.
//
// This bench runs the identical multi-gateway scenario (scenario-engine
// load ramps + a LAN spike on a 5-replica pool) with the score OFF and
// ON and reports, per arm:
//   - amplitude: mean over replicas of the temporal stddev of that
//     replica's DETRENDED queue length q_i(t) - mean_j q_j(t), sampled
//     every 20ms. Subtracting the per-instant fleet mean removes the
//     variance every arm shares (the scripted ramps swing total load),
//     leaving exactly the herding signature: how unevenly the same
//     total backlog sloshes between replicas over time;
//   - timely_fraction: 1 - observed timing-failure probability across
//     all gateways.
// Gates (exit nonzero on failure, also emitted as bool rows):
//   oscillation.amplitude_reduced   amplitude(on) < amplitude(off)
//   oscillation.timely_no_worse     timely(on) >= timely(off) - 0.01
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_json.h"
#include "fault/scenario_runner.h"
#include "gateway/system.h"
#include "replica/service_model.h"
#include "sim/periodic.h"
#include "stats/variates.h"

namespace {

using namespace aqua;

constexpr std::size_t kReplicas = 5;
constexpr std::size_t kGateways = 10;
constexpr std::size_t kRequestsPerClient = 60;
constexpr auto kSamplePeriod = msec(20);

/// Load ramps on two replicas plus a LAN spike: the regimes where pure
/// P(t) ranking re-herds hardest (every gateway flees the ramped host at
/// the same instant, then floods whoever ranked next).
fault::ScenarioScript oscillation_script() {
  fault::ScenarioScript script;
  script.name = "multi_gateway_ramp";
  script.load_ramp(sec(2), sec(5), 0, 2.5, 5);
  script.load_ramp(sec(4), sec(5), 1, 2.0, 5);
  script.lan_spike(sec(7), sec(2), 2.0);
  return script;
}

struct ArmResult {
  double amplitude = 0.0;        // mean over replicas of queue-length stddev
  double timely_fraction = 0.0;  // across every gateway's requests
  double mean_redundancy = 0.0;
};

double temporal_stddev(const std::vector<double>& series) {
  if (series.size() < 2) return 0.0;
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  double var = 0.0;
  for (double v : series) var += (v - mean) * (v - mean);
  return std::sqrt(var / static_cast<double>(series.size()));
}

/// Replace each sample with its offset from that instant's fleet mean.
void detrend(std::vector<std::vector<double>>& series) {
  if (series.empty() || series[0].empty()) return;
  for (std::size_t t = 0; t < series[0].size(); ++t) {
    double fleet = 0.0;
    for (const auto& s : series) fleet += s[t];
    fleet /= static_cast<double>(series.size());
    for (auto& s : series) s[t] -= fleet;
  }
}

ArmResult run_arm(bool score_on, std::uint64_t seed) {
  gateway::SystemConfig cfg;
  cfg.seed = seed;
  gateway::AquaSystem system{cfg};

  fault::ScenarioHooks hooks;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    auto modulation = std::make_shared<stats::LoadModulation>();
    hooks.replica_load.push_back(modulation);
    system.add_replica(replica::make_modulated_service(
        replica::make_sampled_service(stats::make_truncated_normal(msec(40), msec(12))),
        modulation));
  }

  gateway::HandlerConfig handler;
  handler.selection.load.enabled = score_on;

  gateway::ClientWorkload workload;
  workload.total_requests = kRequestsPerClient;
  workload.think_time = stats::make_constant(msec(250));
  for (std::size_t c = 0; c < kGateways; ++c) {
    workload.start_delay = msec(static_cast<std::int64_t>(23 * c));
    system.add_client(core::QosSpec{msec(150), 0.9}, workload, handler);
  }

  // Sample every replica's FIFO backlog on a fixed grid; the per-replica
  // temporal stddev of this series is the oscillation amplitude.
  std::vector<std::vector<double>> series(kReplicas);
  const std::vector<replica::ReplicaServer*> replicas = system.replicas();
  sim::PeriodicTask sampler(system.simulator(), kSamplePeriod, [&] {
    for (std::size_t i = 0; i < kReplicas; ++i) {
      series[i].push_back(static_cast<double>(replicas[i]->queue_length()));
    }
  });

  fault::ScenarioRunner runner{system, oscillation_script(), std::move(hooks), seed};
  runner.run(sec(120), msec(100));
  sampler.stop();

  ArmResult result;
  detrend(series);
  for (const std::vector<double>& s : series) {
    result.amplitude += temporal_stddev(s) / static_cast<double>(kReplicas);
  }
  std::size_t requests = 0;
  std::size_t failures = 0;
  double redundancy = 0.0;
  const auto reports = system.reports();
  for (const trace::ClientRunReport& report : reports) {
    requests += report.requests;
    failures += report.timing_failures;
    redundancy += report.mean_redundancy() / static_cast<double>(reports.size());
  }
  result.timely_fraction =
      requests == 0 ? 0.0
                    : 1.0 - static_cast<double>(failures) / static_cast<double>(requests);
  result.mean_redundancy = redundancy;
  return result;
}

}  // namespace

int main() {
  std::size_t seeds = 5;
  if (const char* s = std::getenv("AQUA_BENCH_SEEDS")) seeds = std::strtoul(s, nullptr, 10);
  if (seeds == 0) seeds = 1;

  std::printf("=== selection oscillation: %zu gateways, %zu replicas, score off vs on ===\n",
              kGateways, kReplicas);
  std::printf("%zu clients x %zu requests, deadline 150ms Pc 0.9, %zu seeds\n\n", kGateways,
              kRequestsPerClient, seeds);
  std::printf("%-6s %18s %18s %14s %14s\n", "seed", "amp_off", "amp_on", "timely_off",
              "timely_on");

  ArmResult off_total;
  ArmResult on_total;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const ArmResult off = run_arm(false, seed);
    const ArmResult on = run_arm(true, seed);
    off_total.amplitude += off.amplitude / static_cast<double>(seeds);
    off_total.timely_fraction += off.timely_fraction / static_cast<double>(seeds);
    off_total.mean_redundancy += off.mean_redundancy / static_cast<double>(seeds);
    on_total.amplitude += on.amplitude / static_cast<double>(seeds);
    on_total.timely_fraction += on.timely_fraction / static_cast<double>(seeds);
    on_total.mean_redundancy += on.mean_redundancy / static_cast<double>(seeds);
    std::printf("%-6llu %18.3f %18.3f %14.3f %14.3f\n",
                static_cast<unsigned long long>(seed), off.amplitude, on.amplitude,
                off.timely_fraction, on.timely_fraction);
  }

  const bool amplitude_reduced = on_total.amplitude < off_total.amplitude;
  const bool timely_no_worse = on_total.timely_fraction >= off_total.timely_fraction - 0.01;
  std::printf("\nmean amplitude off=%.3f on=%.3f: %s\n", off_total.amplitude,
              on_total.amplitude, amplitude_reduced ? "REDUCED" : "NOT REDUCED");
  std::printf("mean timely off=%.3f on=%.3f: %s\n", off_total.timely_fraction,
              on_total.timely_fraction, timely_no_worse ? "no worse" : "WORSE");

  const bool wrote = bench::write_bench_json(
      "BENCH_oscillation.json", "selection_oscillation",
      {
          {"score_off.amplitude", off_total.amplitude, "requests"},
          {"score_on.amplitude", on_total.amplitude, "requests"},
          {"score_off.timely_fraction", off_total.timely_fraction, "fraction"},
          {"score_on.timely_fraction", on_total.timely_fraction, "fraction"},
          {"score_off.mean_redundancy", off_total.mean_redundancy, "copies"},
          {"score_on.mean_redundancy", on_total.mean_redundancy, "copies"},
          {"oscillation.amplitude_reduced", amplitude_reduced ? 1.0 : 0.0, "bool"},
          {"oscillation.timely_no_worse", timely_no_worse ? 1.0 : 0.0, "bool"},
      });
  return (wrote && amplitude_reduced && timely_no_worse) ? 0 : 1;
}
