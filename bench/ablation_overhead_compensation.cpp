// Ablation of SS5.3.3: selecting with F(t - delta) instead of F(t), where
// delta is the measured cost of the selection algorithm itself.
//
// The compensation matters exactly when the response-time distribution
// has probability mass inside the delta-wide band below the deadline —
// then the naive model overestimates every replica's chances by
// F(t) - F(t - delta) and under-provisions. This bench spreads service
// times uniformly so that band always carries ~delta/spread of mass, and
// inflates the modelled decision cost to the paper's 2001-era levels
// (Figure 3: up to ~900us; here ~1.5ms at n=6, l=20).
#include <cstdio>

#include "gateway/system.h"

namespace {

using namespace aqua;
using namespace aqua::gateway;

struct Outcome {
  double failure_prob = 0.0;
  double cost = 0.0;
};

Outcome run(bool compensation, Duration deadline, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.seed = seed;
  AquaSystem system{cfg};
  for (int i = 0; i < 6; ++i) {
    system.add_replica(
        replica::make_sampled_service(stats::make_uniform(msec(1), msec(12))));
  }

  HandlerConfig handler_cfg;
  handler_cfg.selection.overhead_compensation = compensation;
  handler_cfg.repository.window_size = 20;
  // Inflate the modelled decision cost to 2001-hardware levels.
  handler_cfg.overhead.base = usec(300);
  handler_cfg.overhead.per_replica = usec(40);
  handler_cfg.overhead.per_atom_ns = 350.0;

  ClientWorkload workload;
  workload.total_requests = 150;
  workload.think_time = stats::make_constant(msec(40));
  ClientApp& app = system.add_client(core::QosSpec{deadline, 0.9}, workload, handler_cfg);
  system.run_until_clients_done(sec(60));
  const auto report = app.report();
  return {report.failure_probability(), report.mean_redundancy()};
}

Outcome average(bool compensation, Duration deadline) {
  Outcome total;
  constexpr std::size_t kSeeds = 10;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const Outcome o = run(compensation, deadline, 400 + s);
    total.failure_prob += o.failure_prob / kSeeds;
    total.cost += o.cost / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("=== Ablation: overhead compensation F(t - delta) (SS5.3.3) ===\n");
  std::printf("service ~ U(1ms, 12ms), inflated decision cost (~1.5ms), Pc=0.9\n\n");
  std::printf("%-16s %14s %10s %14s %10s\n", "deadline (ms)", "fail (comp)", "|K|",
              "fail (naive)", "|K|");
  for (std::int64_t t : {13, 15, 17, 19, 22, 26}) {
    const Outcome with = average(true, msec(t));
    const Outcome without = average(false, msec(t));
    std::printf("%-16lld %14.3f %10.2f %14.3f %10.2f\n", static_cast<long long>(t),
                with.failure_prob, with.cost, without.failure_prob, without.cost);
  }
  std::printf("\nexpected shape: near-deadline mass makes the naive variant overestimate\n");
  std::printf("F by about delta/spread per replica, so it selects fewer replicas and\n");
  std::printf("fails more; compensation provisions for the effective deadline t-delta.\n");
  std::printf("At loose deadlines the two coincide.\n");
  return 0;
}
