// Selection hot path: cost of one ReplicaSelector::select against a live
// InfoRepository, with and without the response-pmf model cache.
//
// The steady-state case (repository unchanged between selections) is the
// common one on the gateway hot path: perf updates arrive per reply, but
// selections also run for every request, retries and probes included, so
// most selections see at most a handful of changed replicas. The cache
// keys each convolved response PMF by (replica, method, generation) and
// re-convolves only replicas whose repository entry actually changed.
//
// Acceptance target: >= 5x steady-state speedup at 8 replicas, window 64
// (printed explicitly after the benchmark table).
//
// The hot_path/telemetry_* benchmarks measure the cost of the observed
// policy decorator: disabled (null telemetry — one branch per site) must
// track the bare policy, enabled pays the counter/histogram updates.
// `--check-telemetry-overhead` runs a pass/fail gate on the disabled
// path (interleaved rounds, median-of-rounds, <= 2% + 0.2us slack) used
// by tools/run_checks.sh to catch regressions of the one-branch rule.
// `--check-calibration-overhead` applies the same gate to the outcome
// path: a Telemetry with calibration disabled must add <= 2% + 0.2us
// per select+record_calibration over the bare select (the tracker-null
// branch is the only cost calibration may impose when off).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "core/info_repository.h"
#include "core/model_cache.h"
#include "core/policies.h"
#include "core/response_time_model.h"
#include "core/selection.h"
#include "obs/telemetry.h"

namespace {

using namespace aqua;

const core::QosSpec kQos{msec(150), 0.9};

/// Repository with `replicas` members and `window` perf samples each.
core::InfoRepository build_repository(std::size_t replicas, std::size_t window,
                                      std::uint64_t seed = 7) {
  core::RepositoryConfig config;
  config.window_size = window;
  core::InfoRepository repo{config};
  Rng rng{seed};
  for (std::size_t i = 0; i < replicas; ++i) {
    const ReplicaId id{i + 1};
    repo.add_replica(id);
    for (std::size_t j = 0; j < window; ++j) {
      repo.record_perf(id,
                       core::PerfSample{msec(rng.uniform_int(60, 160)),
                                        msec(rng.uniform_int(0, 40)),
                                        rng.uniform_int(0, 3)},
                       TimePoint{});
    }
    repo.record_gateway_delay(id, usec(rng.uniform_int(1000, 5000)), TimePoint{});
  }
  return repo;
}

core::ReplicaSelector make_selector(std::shared_ptr<core::ModelCache> cache) {
  return core::ReplicaSelector{core::SelectionConfig{},
                               core::ResponseTimeModel{core::ModelConfig{}, std::move(cache)}};
}

/// Baseline: every selection re-convolves every replica.
void BM_SelectUncached(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto repo = build_repository(replicas, window);
  const auto selector = make_selector(nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(repo.observe_all(), kQos));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

/// Steady state: repository unchanged between selections, so after the
/// first iteration every replica is a cache hit.
void BM_SelectCachedSteady(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto repo = build_repository(replicas, window);
  auto cache = std::make_shared<core::ModelCache>();
  const auto selector = make_selector(cache);
  benchmark::DoNotOptimize(selector.select(repo.observe_all(), kQos));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(repo.observe_all(), kQos));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

/// Churn: one replica's window changes before every selection (one reply
/// between selections), so each select re-convolves exactly one replica
/// and serves the rest from the cache.
void BM_SelectCachedChurn(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  auto repo = build_repository(replicas, window);
  auto cache = std::make_shared<core::ModelCache>();
  const auto selector = make_selector(cache);
  Rng rng{11};
  std::size_t next = 0;
  benchmark::DoNotOptimize(selector.select(repo.observe_all(), kQos));  // warm
  for (auto _ : state) {
    repo.record_perf(ReplicaId{next % replicas + 1},
                     core::PerfSample{msec(rng.uniform_int(60, 160)),
                                      msec(rng.uniform_int(0, 40)), 1},
                     TimePoint{});
    ++next;
    benchmark::DoNotOptimize(selector.select(repo.observe_all(), kQos));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

/// Bare dynamic policy — the handler's hot path when telemetry is off
/// (make_observed_policy is only applied when a hub is attached).
void BM_SelectPolicyBare(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto repo = build_repository(replicas, window);
  auto cache = std::make_shared<core::ModelCache>();
  const auto policy = core::make_dynamic_policy({}, {}, cache);
  Rng rng{13};
  benchmark::DoNotOptimize(policy->select(repo.observe_all(), kQos, Duration::zero(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(repo.observe_all(), kQos, Duration::zero(), rng));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

/// Observed decorator with a NULL hub: the disabled-telemetry path (one
/// extra virtual call + one branch per selection).
void BM_SelectTelemetryDisabled(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto repo = build_repository(replicas, window);
  auto cache = std::make_shared<core::ModelCache>();
  const auto policy =
      core::make_observed_policy(core::make_dynamic_policy({}, {}, cache), nullptr);
  Rng rng{13};
  benchmark::DoNotOptimize(policy->select(repo.observe_all(), kQos, Duration::zero(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(repo.observe_all(), kQos, Duration::zero(), rng));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

/// Observed decorator with a LIVE hub: counters + redundancy histogram
/// updated on every selection.
void BM_SelectTelemetryEnabled(benchmark::State& state) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto repo = build_repository(replicas, window);
  auto cache = std::make_shared<core::ModelCache>();
  obs::Telemetry telemetry;
  const auto policy =
      core::make_observed_policy(core::make_dynamic_policy({}, {}, cache), &telemetry);
  Rng rng{13};
  benchmark::DoNotOptimize(policy->select(repo.observe_all(), kQos, Duration::zero(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select(repo.observe_all(), kQos, Duration::zero(), rng));
  }
  state.SetLabel("replicas=" + std::to_string(replicas) + " window=" + std::to_string(window));
}

void register_benchmarks() {
  for (std::int64_t window : {5, 16, 64}) {
    for (std::int64_t replicas : {2, 4, 8, 16}) {
      benchmark::RegisterBenchmark("hot_path/uncached", BM_SelectUncached)
          ->Args({replicas, window});
      benchmark::RegisterBenchmark("hot_path/cached_steady", BM_SelectCachedSteady)
          ->Args({replicas, window});
      benchmark::RegisterBenchmark("hot_path/cached_churn", BM_SelectCachedChurn)
          ->Args({replicas, window});
    }
  }
  // Telemetry decorator cost at the acceptance point only (the decorator
  // cost does not depend on the repository shape).
  for (std::int64_t replicas : {8}) {
    benchmark::RegisterBenchmark("hot_path/telemetry_bare", BM_SelectPolicyBare)
        ->Args({replicas, 64});
    benchmark::RegisterBenchmark("hot_path/telemetry_disabled", BM_SelectTelemetryDisabled)
        ->Args({replicas, 64});
    benchmark::RegisterBenchmark("hot_path/telemetry_enabled", BM_SelectTelemetryEnabled)
        ->Args({replicas, 64});
  }
}

/// Direct measurement of the acceptance target: steady-state cached vs
/// uncached selection at 8 replicas, window 64.
void print_speedup() {
  constexpr std::size_t kReplicas = 8;
  constexpr std::size_t kWindow = 64;
  constexpr int kIterations = 400;
  const auto repo = build_repository(kReplicas, kWindow);

  using Clock = std::chrono::steady_clock;
  const auto uncached = make_selector(nullptr);
  double sink = 0.0;
  const auto t0 = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    sink += uncached.select(repo.observe_all(), kQos).predicted_probability;
  }
  const auto t1 = Clock::now();

  auto cache = std::make_shared<core::ModelCache>();
  const auto cached = make_selector(cache);
  sink += cached.select(repo.observe_all(), kQos).predicted_probability;  // warm
  const auto t2 = Clock::now();
  for (int i = 0; i < kIterations; ++i) {
    sink += cached.select(repo.observe_all(), kQos).predicted_probability;
  }
  const auto t3 = Clock::now();

  const double uncached_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kIterations;
  const double cached_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count() / kIterations;
  const auto& stats = cache->stats();
  std::printf("\nSteady-state speedup, %zu replicas, window %zu:\n", kReplicas, kWindow);
  std::printf("  uncached: %8.2f us/select\n", uncached_us);
  std::printf("  cached:   %8.2f us/select (hits=%llu misses=%llu)\n", cached_us,
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  std::printf("  speedup:  %8.2fx (target >= 5x)\n", uncached_us / cached_us);
  aqua::bench::write_bench_json(
      "BENCH_selection.json", "selection_hot_path",
      {{"uncached_select", uncached_us, "us"},
       {"cached_steady_select", cached_us, "us"},
       {"cache_speedup", uncached_us / cached_us, "x"}});
  if (sink < 0.0) std::abort();  // keep the measured loops alive
}

/// Pass/fail regression gate for the one-branch disabled-telemetry rule.
///
/// Compares the bare dynamic policy against the observed decorator with a
/// null hub at the acceptance point (8 replicas, window 64, steady-state
/// cache). Rounds are interleaved (bare, disabled, bare, disabled, ...)
/// so frequency drift hits both variants equally, and the median round
/// is compared: disabled must be within 2% of bare, plus a 0.2us
/// absolute allowance for timer noise on a sub-microsecond base cost.
int check_telemetry_overhead() {
  constexpr std::size_t kReplicas = 8;
  constexpr std::size_t kWindow = 64;
  constexpr int kRounds = 21;
  constexpr int kSelectsPerRound = 300;
  constexpr double kRelativeSlack = 1.02;
  constexpr double kAbsoluteSlackUs = 0.2;

  const auto repo = build_repository(kReplicas, kWindow);
  auto bare_cache = std::make_shared<core::ModelCache>();
  auto disabled_cache = std::make_shared<core::ModelCache>();
  const auto bare = core::make_dynamic_policy({}, {}, bare_cache);
  const auto disabled =
      core::make_observed_policy(core::make_dynamic_policy({}, {}, disabled_cache), nullptr);
  Rng rng{13};

  using Clock = std::chrono::steady_clock;
  double sink = 0.0;
  const auto time_round = [&](const core::PolicyPtr& policy) {
    const auto start = Clock::now();
    for (int i = 0; i < kSelectsPerRound; ++i) {
      sink += policy->select(repo.observe_all(), kQos, Duration::zero(), rng)
                  .predicted_probability;
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
           kSelectsPerRound;
  };

  // Warm both caches (first round would otherwise pay the convolutions).
  time_round(bare);
  time_round(disabled);

  std::vector<double> bare_rounds;
  std::vector<double> disabled_rounds;
  for (int r = 0; r < kRounds; ++r) {
    bare_rounds.push_back(time_round(bare));
    disabled_rounds.push_back(time_round(disabled));
  }
  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2), v.end());
    return v[v.size() / 2];
  };
  const double bare_us = median(bare_rounds);
  const double disabled_us = median(disabled_rounds);
  const double limit_us = bare_us * kRelativeSlack + kAbsoluteSlackUs;
  const bool pass = disabled_us <= limit_us;

  std::printf("=== Disabled-telemetry overhead gate ===\n");
  std::printf("%zu replicas, window %zu, %d rounds x %d selects, median-of-rounds\n", kReplicas,
              kWindow, kRounds, kSelectsPerRound);
  std::printf("  bare policy:        %8.3f us/select\n", bare_us);
  std::printf("  telemetry disabled: %8.3f us/select (limit %.3f)\n", disabled_us, limit_us);
  std::printf("  %s\n", pass ? "PASS: disabled telemetry within budget"
                             : "FAIL: disabled telemetry exceeds 2% + 0.2us budget");
  aqua::bench::write_bench_json(
      "BENCH_selection.json", "selection_hot_path",
      {{"bare_select", bare_us, "us"},
       {"telemetry_disabled_select", disabled_us, "us"},
       {"disabled_overhead", bare_us > 0.0 ? disabled_us / bare_us : 0.0, "x"}});
  if (sink < 0.0) std::abort();  // keep the measured loops alive
  return pass ? 0 : 1;
}

/// Pass/fail regression gate for the disabled-calibration rule.
///
/// The outcome hot path calls Telemetry::record_calibration once per
/// decided request; with calibration disabled the tracker pointer is
/// null and the call must be a single branch. Interleaved rounds compare
/// bare selection against selection + a disabled record_calibration:
/// median-of-rounds, <= 2% relative + 0.2us absolute slack.
int check_calibration_overhead() {
  constexpr std::size_t kReplicas = 8;
  constexpr std::size_t kWindow = 64;
  constexpr int kRounds = 21;
  constexpr int kSelectsPerRound = 300;
  constexpr double kRelativeSlack = 1.02;
  constexpr double kAbsoluteSlackUs = 0.2;

  const auto repo = build_repository(kReplicas, kWindow);
  auto bare_cache = std::make_shared<core::ModelCache>();
  auto disabled_cache = std::make_shared<core::ModelCache>();
  const auto bare = core::make_dynamic_policy({}, {}, bare_cache);
  const auto with_call = core::make_dynamic_policy({}, {}, disabled_cache);
  obs::TelemetryConfig config;
  config.calibration.enabled = false;
  obs::Telemetry telemetry{config};
  Rng rng{13};

  using Clock = std::chrono::steady_clock;
  double sink = 0.0;
  const auto time_bare = [&] {
    const auto start = Clock::now();
    for (int i = 0; i < kSelectsPerRound; ++i) {
      sink += bare->select(repo.observe_all(), kQos, Duration::zero(), rng)
                  .predicted_probability;
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
           kSelectsPerRound;
  };
  const auto time_disabled = [&] {
    const auto start = Clock::now();
    for (int i = 0; i < kSelectsPerRound; ++i) {
      const auto selection =
          with_call->select(repo.observe_all(), kQos, Duration::zero(), rng);
      telemetry.record_calibration(TimePoint{}, ClientId{1}, ReplicaId{1},
                                   selection.predicted_probability, true);
      sink += selection.predicted_probability;
    }
    return std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
           kSelectsPerRound;
  };

  // Warm both caches (first round would otherwise pay the convolutions).
  time_bare();
  time_disabled();

  std::vector<double> bare_rounds;
  std::vector<double> disabled_rounds;
  for (int r = 0; r < kRounds; ++r) {
    bare_rounds.push_back(time_bare());
    disabled_rounds.push_back(time_disabled());
  }
  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2), v.end());
    return v[v.size() / 2];
  };
  const double bare_us = median(bare_rounds);
  const double disabled_us = median(disabled_rounds);
  const double limit_us = bare_us * kRelativeSlack + kAbsoluteSlackUs;
  const bool pass = disabled_us <= limit_us;

  std::printf("=== Disabled-calibration overhead gate ===\n");
  std::printf("%zu replicas, window %zu, %d rounds x %d selects, median-of-rounds\n", kReplicas,
              kWindow, kRounds, kSelectsPerRound);
  std::printf("  bare select:                  %8.3f us\n", bare_us);
  std::printf("  select + disabled record:     %8.3f us (limit %.3f)\n", disabled_us, limit_us);
  std::printf("  %s\n", pass ? "PASS: disabled calibration within budget"
                             : "FAIL: disabled calibration exceeds 2% + 0.2us budget");
  aqua::bench::write_bench_json(
      "BENCH_selection.json", "selection_hot_path",
      {{"bare_select", bare_us, "us"},
       {"calibration_disabled_select", disabled_us, "us"},
       {"calibration_disabled_overhead", bare_us > 0.0 ? disabled_us / bare_us : 0.0, "x"}});
  if (sink < 0.0) std::abort();  // keep the measured loops alive
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-telemetry-overhead") == 0) {
      return check_telemetry_overhead();
    }
    if (std::strcmp(argv[i], "--check-calibration-overhead") == 0) {
      return check_calibration_overhead();
    }
  }
  std::printf("=== Selection hot path: model cache on/off ===\n\n");
  register_benchmarks();
  // Keep the default run short (the harness runs every bench binary);
  // pass an explicit --benchmark_min_time to override.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.05";
  bool user_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) user_set = true;
  }
  if (!user_set) args.push_back(min_time.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_speedup();
  return 0;
}
